package report

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/trainer"
)

// Data bundles every experiment result that can appear in the report. Nil or
// empty sections are skipped.
type Data struct {
	Table2     []trainer.Phases
	Fig4       []bench.Fig4Row
	Fig4Sizes  []int
	Fig5       []bench.Fig5Series
	Fig6       *bench.Fig6Result
	Fig7       []bench.Fig7Row
	Generated  time.Time
	MachineTag string
}

// Write renders the full standalone HTML report.
func Write(w io.Writer, d Data) error {
	var b strings.Builder
	b.WriteString(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>stenciltune experiment report</title>
<style>
body { font-family: sans-serif; max-width: 1020px; margin: 24px auto; color: #222; }
h1 { font-size: 22px; } h2 { font-size: 17px; margin-top: 36px; }
table { border-collapse: collapse; font-size: 13px; }
td, th { border: 1px solid #ccc; padding: 4px 10px; text-align: right; }
th { background: #f0f0f0; }
.note { color: #666; font-size: 13px; }
</style></head><body>
`)
	fmt.Fprintf(&b, "<h1>stenciltune — experiment report</h1>\n")
	fmt.Fprintf(&b, `<p class="note">Reproduction of Cosenza et al., "Autotuning Stencil Computations with Structural Ordinal Regression Learning" (IPDPS 2017). Generated %s on %s.</p>`+"\n",
		d.Generated.Format("2006-01-02 15:04"), escape(d.MachineTag))

	if len(d.Table2) > 0 {
		b.WriteString("<h2>Table II — training-phase costs</h2>\n<table>\n")
		b.WriteString("<tr><th>TS size</th><th>TS compile (sim.)</th><th>TS generation (sim.)</th><th>training</th><th>regression</th></tr>\n")
		for _, r := range d.Table2 {
			fmt.Fprintf(&b, "<tr><td>%d</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>\n",
				r.TSSize, fmtDur(r.TSCompile), fmtDur(r.TSGeneration),
				fmtDur(r.Training), fmtDur(r.Regression))
		}
		b.WriteString("</table>\n")
	}
	if len(d.Fig4) > 0 {
		b.WriteString("<h2>Fig. 4 — speedup vs GA-1024</h2>\n")
		b.WriteString(Fig4Chart(d.Fig4, d.Fig4Sizes))
	}
	for _, s := range d.Fig5 {
		fmt.Fprintf(&b, "<h2>Fig. 5 — %s</h2>\n", escape(s.Benchmark))
		b.WriteString(Fig5Chart(s, d.Fig4Sizes))
	}
	if d.Fig6 != nil && len(d.Fig6.Taus) > 0 {
		b.WriteString("<h2>Fig. 6 — per-instance Kendall τ</h2>\n")
		b.WriteString(Fig6Chart(*d.Fig6))
	}
	if len(d.Fig7) > 0 {
		b.WriteString("<h2>Fig. 7 — τ distribution by training-set size</h2>\n")
		b.WriteString(Fig7Chart(d.Fig7))
	}
	b.WriteString("</body></html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Hour:
		return fmt.Sprintf("%.1f h", d.Hours())
	case d >= time.Minute:
		return fmt.Sprintf("%.1f m", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.2f s", d.Seconds())
	default:
		return fmt.Sprintf("%.2f ms", float64(d.Microseconds())/1000)
	}
}
