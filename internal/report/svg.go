// Package report renders experiment results into a standalone HTML report
// with inline SVG charts — publication-style counterparts of the paper's
// figures, generated entirely with the standard library.
package report

import (
	"fmt"
	"math"
	"strings"
)

// svgCanvas accumulates SVG elements with a fixed coordinate system.
type svgCanvas struct {
	w, h int
	b    strings.Builder
}

func newCanvas(w, h int) *svgCanvas {
	c := &svgCanvas{w: w, h: h}
	fmt.Fprintf(&c.b, `<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 %d %d" width="%d" height="%d" font-family="sans-serif">`,
		w, h, w, h)
	c.b.WriteString("\n")
	return c
}

func (c *svgCanvas) String() string { return c.b.String() + "</svg>\n" }

func (c *svgCanvas) rect(x, y, w, h float64, fill string) {
	fmt.Fprintf(&c.b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
		x, y, w, h, fill)
}

func (c *svgCanvas) line(x1, y1, x2, y2 float64, stroke string, width float64) {
	fmt.Fprintf(&c.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"/>`+"\n",
		x1, y1, x2, y2, stroke, width)
}

func (c *svgCanvas) dashedLine(x1, y1, x2, y2 float64, stroke string, width float64) {
	fmt.Fprintf(&c.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f" stroke-dasharray="6,3"/>`+"\n",
		x1, y1, x2, y2, stroke, width)
}

func (c *svgCanvas) polyline(points [][2]float64, stroke string, width float64) {
	var sb strings.Builder
	for i, p := range points {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%.1f,%.1f", p[0], p[1])
	}
	fmt.Fprintf(&c.b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="%.1f"/>`+"\n",
		sb.String(), stroke, width)
}

func (c *svgCanvas) polygon(points [][2]float64, fill string, opacity float64) {
	var sb strings.Builder
	for i, p := range points {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%.1f,%.1f", p[0], p[1])
	}
	fmt.Fprintf(&c.b, `<polygon points="%s" fill="%s" fill-opacity="%.2f"/>`+"\n",
		sb.String(), fill, opacity)
}

func (c *svgCanvas) circle(x, y, r float64, fill string) {
	fmt.Fprintf(&c.b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`+"\n", x, y, r, fill)
}

func (c *svgCanvas) text(x, y float64, size int, anchor, s string) {
	fmt.Fprintf(&c.b, `<text x="%.1f" y="%.1f" font-size="%d" text-anchor="%s">%s</text>`+"\n",
		x, y, size, anchor, escape(s))
}

func (c *svgCanvas) vtext(x, y float64, size int, s string) {
	fmt.Fprintf(&c.b, `<text x="%.1f" y="%.1f" font-size="%d" text-anchor="end" transform="rotate(-45 %.1f %.1f)">%s</text>`+"\n",
		x, y, size, x, y, escape(s))
}

func escape(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, ">", "&gt;")
	return s
}

// palette is the series colour cycle.
var palette = []string{
	"#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377", "#bbbbbb", "#222222",
}

func color(i int) string { return palette[i%len(palette)] }

// niceCeil rounds v up to a visually pleasant axis limit.
func niceCeil(v float64) float64 {
	if v <= 0 {
		return 1
	}
	mag := math.Pow(10, math.Floor(math.Log10(v)))
	for _, m := range []float64{1, 1.2, 1.5, 2, 2.5, 3, 4, 5, 6, 8, 10} {
		if v <= m*mag {
			return m * mag
		}
	}
	return 10 * mag
}
