package report

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/bench"
	"repro/internal/ranking"
)

// Chart geometry shared by all figures.
const (
	chartW  = 960
	chartH  = 420
	marginL = 60
	marginR = 20
	marginT = 30
	marginB = 110
	plotW   = chartW - marginL - marginR
	plotH   = chartH - marginT - marginB
)

// fig4Engines is the bar order within each benchmark group.
var fig4Engines = []string{
	"genetic algorithm", "differential evolution", "evolutive strategy", "sGA",
}

// Fig4Chart renders the grouped speedup bars of Fig. 4.
func Fig4Chart(rows []bench.Fig4Row, trainSizes []int) string {
	c := newCanvas(chartW, chartH)
	c.text(marginL, 18, 14, "start", "Fig. 4 — speedup vs GA-1024 base configuration")

	series := len(fig4Engines) + len(trainSizes)
	maxV := 0.0
	for _, r := range rows {
		for _, e := range fig4Engines {
			maxV = math.Max(maxV, r.Search[e])
		}
		for _, s := range trainSizes {
			maxV = math.Max(maxV, r.Regression[s])
		}
	}
	yMax := niceCeil(maxV)
	yOf := func(v float64) float64 { return marginT + plotH*(1-v/yMax) }

	// Axes and gridlines.
	c.line(marginL, marginT, marginL, marginT+plotH, "#333", 1)
	c.line(marginL, marginT+plotH, marginL+plotW, marginT+plotH, "#333", 1)
	for _, tick := range []float64{0.25, 0.5, 0.75, 1.0, 1.25} {
		if tick > yMax {
			break
		}
		y := yOf(tick)
		c.line(marginL, y, marginL+plotW, y, "#ddd", 0.5)
		c.text(marginL-6, y+4, 10, "end", fmt.Sprintf("%.2f", tick))
	}
	// Emphasize the 1.0 base line.
	c.dashedLine(marginL, yOf(1), marginL+plotW, yOf(1), "#888", 1)

	group := float64(plotW) / float64(len(rows))
	barW := group * 0.8 / float64(series)
	for gi, r := range rows {
		x0 := marginL + group*float64(gi) + group*0.1
		si := 0
		for ei, e := range fig4Engines {
			v := r.Search[e]
			c.rect(x0+barW*float64(si), yOf(v), barW*0.9, marginT+plotH-yOf(v), color(ei))
			si++
		}
		for ti, s := range trainSizes {
			v := r.Regression[s]
			c.rect(x0+barW*float64(si), yOf(v), barW*0.9, marginT+plotH-yOf(v), color(len(fig4Engines)+ti))
			si++
		}
		c.vtext(x0+group*0.4, marginT+plotH+14, 9, r.Benchmark)
	}
	legendFig4(c, trainSizes)
	return c.String()
}

func legendFig4(c *svgCanvas, trainSizes []int) {
	x := marginL
	y := float64(chartH - 8)
	idx := 0
	put := func(label string) {
		c.rect(float64(x), y-9, 10, 10, color(idx))
		c.text(float64(x)+14, y, 10, "start", label)
		x += 14 + 7*len(label) + 16
		idx++
	}
	for _, e := range fig4Engines {
		put(e)
	}
	for _, s := range trainSizes {
		put(fmt.Sprintf("ord.regr %d", s))
	}
}

// Fig5Chart renders one convergence panel: GFlop/s vs evaluations (log2 x)
// with ordinal-regression horizontal lines.
func Fig5Chart(s bench.Fig5Series, trainSizes []int) string {
	c := newCanvas(chartW, chartH)
	c.text(marginL, 18, 14, "start", "Fig. 5 — "+s.Benchmark+": performance vs evaluations")

	maxV := 0.0
	for _, curve := range s.Curves {
		for _, p := range curve {
			maxV = math.Max(maxV, p.GFlops)
		}
	}
	for _, v := range s.Regression {
		maxV = math.Max(maxV, v)
	}
	yMax := niceCeil(maxV * 1.05)
	yOf := func(v float64) float64 { return marginT + plotH*(1-v/yMax) }
	// x: log2(evaluations) over the curve of the first engine.
	maxEval := 1
	for _, curve := range s.Curves {
		for _, p := range curve {
			if p.Evaluations > maxEval {
				maxEval = p.Evaluations
			}
		}
	}
	lmax := math.Log2(float64(maxEval))
	xOf := func(evals int) float64 {
		return marginL + plotW*math.Log2(float64(evals))/lmax
	}

	c.line(marginL, marginT, marginL, marginT+plotH, "#333", 1)
	c.line(marginL, marginT+plotH, marginL+plotW, marginT+plotH, "#333", 1)
	for e := 1; e <= maxEval; e *= 2 {
		x := xOf(e)
		c.line(x, marginT+plotH, x, marginT+plotH+4, "#333", 1)
		c.text(x, marginT+plotH+16, 10, "middle", fmt.Sprintf("%d", e))
	}
	for i := 0; i <= 4; i++ {
		v := yMax * float64(i) / 4
		y := yOf(v)
		c.line(marginL, y, marginL+plotW, y, "#ddd", 0.5)
		c.text(marginL-6, y+4, 10, "end", fmt.Sprintf("%.1f", v))
	}
	c.text(marginL+plotW/2, marginT+plotH+32, 11, "middle", "evaluations")
	c.text(14, marginT+plotH/2, 11, "middle", "GFlop/s")

	for ei, e := range fig4Engines {
		curve := s.Curves[e]
		pts := make([][2]float64, 0, len(curve))
		for _, p := range curve {
			pts = append(pts, [2]float64{xOf(p.Evaluations), yOf(p.GFlops)})
		}
		c.polyline(pts, color(ei), 1.8)
	}
	for ti, size := range trainSizes {
		v := s.Regression[size]
		c.dashedLine(marginL, yOf(v), marginL+plotW, yOf(v), color(len(fig4Engines)+ti), 1.4)
	}
	legendFig4(c, trainSizes)
	return c.String()
}

// Fig6Chart renders per-instance τ scatter for each training size.
func Fig6Chart(res bench.Fig6Result) string {
	c := newCanvas(chartW, chartH)
	c.text(marginL, 18, 14, "start", "Fig. 6 — Kendall τ per training instance")

	sizes := make([]int, 0, len(res.Taus))
	for s := range res.Taus {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)

	n := 0
	for _, s := range sizes {
		if len(res.Taus[s]) > n {
			n = len(res.Taus[s])
		}
	}
	if n == 0 {
		return c.String()
	}
	yOf := func(tau float64) float64 { return marginT + plotH*(1-(tau+1)/2) }
	xOf := func(i int) float64 { return marginL + plotW*float64(i)/float64(n) }

	c.line(marginL, marginT, marginL, marginT+plotH, "#333", 1)
	for _, tick := range []float64{-1, -0.5, 0, 0.5, 1} {
		y := yOf(tick)
		c.line(marginL, y, marginL+plotW, y, "#ddd", 0.5)
		c.text(marginL-6, y+4, 10, "end", fmt.Sprintf("%.1f", tick))
	}
	c.text(marginL+plotW/2, marginT+plotH+24, 11, "middle", "training instance")
	for si, s := range sizes {
		for i, qt := range res.Taus[s] {
			c.circle(xOf(i), yOf(qt.Tau), 2, color(si))
		}
		c.rect(float64(marginL+si*180), float64(chartH-16), 10, 10, color(si))
		c.text(float64(marginL+si*180+14), float64(chartH-7), 10, "start", fmt.Sprintf("TS size %d", s))
	}
	return c.String()
}

// Fig7Chart renders box plots with violin outlines per training size.
func Fig7Chart(rows []bench.Fig7Row) string {
	c := newCanvas(chartW, chartH)
	c.text(marginL, 18, 14, "start", "Fig. 7 — Kendall τ distribution by training-set size")

	yOf := func(tau float64) float64 { return marginT + plotH*(1-(tau+1)/2) }
	c.line(marginL, marginT, marginL, marginT+plotH, "#333", 1)
	for _, tick := range []float64{-1, -0.5, 0, 0.5, 1} {
		y := yOf(tick)
		c.line(marginL, y, marginL+plotW, y, "#ddd", 0.5)
		c.text(marginL-6, y+4, 10, "end", fmt.Sprintf("%.1f", tick))
	}

	grid := bench.DensityGrid()
	group := float64(plotW) / float64(len(rows))
	halfW := group * 0.32
	for i, r := range rows {
		cx := marginL + group*(float64(i)+0.5)
		// Violin: mirrored density polygon.
		maxD := 0.0
		for _, d := range r.Density {
			maxD = math.Max(maxD, d)
		}
		if maxD > 0 {
			var poly [][2]float64
			for gi, tau := range grid {
				poly = append(poly, [2]float64{cx - halfW*r.Density[gi]/maxD, yOf(tau)})
			}
			for gi := len(grid) - 1; gi >= 0; gi-- {
				poly = append(poly, [2]float64{cx + halfW*r.Density[gi]/maxD, yOf(grid[gi])})
			}
			c.polygon(poly, "#ccbb44", 0.5)
		}
		// Box plot.
		s := r.Summary
		boxW := halfW * 0.5
		c.rect(cx-boxW/2, yOf(s.Q3), boxW, yOf(s.Q1)-yOf(s.Q3), "#4477aa")
		c.line(cx-boxW/2, yOf(s.Median), cx+boxW/2, yOf(s.Median), "#fff", 2)
		c.line(cx, yOf(s.WhiskerHi), cx, yOf(s.Q3), "#333", 1)
		c.line(cx, yOf(s.Q1), cx, yOf(s.WhiskerLo), "#333", 1)
		for _, o := range s.Outliers {
			c.circle(cx, yOf(o), 2, "#ee6677")
		}
		c.circle(cx, yOf(s.Median), 3, "#ee6677")
		c.text(cx, marginT+plotH+16, 10, "middle", fmt.Sprintf("%d", r.Size))
	}
	c.text(marginL+plotW/2, marginT+plotH+34, 11, "middle", "training-set size")
	return c.String()
}

// summaryOK reports whether a summary carries data (used by tests).
func summaryOK(s ranking.Summary) bool { return s.N > 0 }
