package dataset

import (
	"context"
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/stencil"
	"repro/internal/tunespace"
)

// cancellingEval counts calls and cancels the context after `cancelAfter`
// evaluations.
type cancellingEval struct {
	calls       atomic.Int64
	cancelAfter int64
	cancel      context.CancelFunc
}

func (e *cancellingEval) Runtime(q stencil.Instance, t tunespace.Vector) float64 {
	if e.calls.Add(1) == e.cancelAfter {
		e.cancel()
	}
	return 1e-3
}

func ctxTestInstance() stencil.Instance {
	return stencil.Instance{Kernel: stencil.Laplacian(), Size: stencil.Size3D(64, 64, 64)}
}

func ctxTestVectors(n int) []tunespace.Vector {
	out := make([]tunespace.Vector, n)
	for i := range out {
		out[i] = tunespace.Vector{Bx: 2 + i%16, By: 4, Bz: 4, U: 0, C: 1}
	}
	return out
}

// TestBatchedContextCancelStopsWork: after cancellation the fan-out must
// stop calling the evaluator and fill remaining slots with +Inf.
func TestBatchedContextCancelStopsWork(t *testing.T) {
	const n = 512
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		eval := &cancellingEval{cancelAfter: 8, cancel: cancel}
		be := BatchedContext(ctx, eval, workers)
		out := be.RuntimeBatch(ctxTestInstance(), ctxTestVectors(n))
		if len(out) != n {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(out), n)
		}
		calls := eval.calls.Load()
		if calls >= n {
			t.Errorf("workers=%d: evaluator ran all %d evaluations despite cancellation", workers, calls)
		}
		infs := 0
		for _, v := range out {
			if math.IsInf(v, 1) {
				infs++
			}
		}
		if infs == 0 {
			t.Errorf("workers=%d: no +Inf sentinels for cancelled slots", workers)
		}
		if int(calls)+infs != n {
			t.Errorf("workers=%d: %d calls + %d sentinels != %d slots", workers, calls, infs, n)
		}
		cancel()
	}
}

// TestBatchedContextBackgroundIdentical: with a Background context the
// adapter behaves exactly like Batched.
func TestBatchedContextBackgroundIdentical(t *testing.T) {
	q := ctxTestInstance()
	vs := ctxTestVectors(64)
	plain := Batched(fixedEval{}, 4).RuntimeBatch(q, vs)
	withCtx := BatchedContext(context.Background(), fixedEval{}, 4).RuntimeBatch(q, vs)
	for i := range plain {
		if plain[i] != withCtx[i] {
			t.Fatalf("slot %d: %v != %v", i, plain[i], withCtx[i])
		}
	}
}

type fixedEval struct{}

func (fixedEval) Runtime(q stencil.Instance, t tunespace.Vector) float64 {
	return float64(t.Bx) * 1e-6
}
