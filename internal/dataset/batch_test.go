package dataset

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/stencil"
	"repro/internal/tunespace"
)

// countingEval wraps the simulator with a thread-safe call counter.
type countingEval struct {
	inner Evaluator
	calls atomic.Int64
}

func (c *countingEval) Runtime(q stencil.Instance, t tunespace.Vector) float64 {
	c.calls.Add(1)
	return c.inner.Runtime(q, t)
}

func testInstance() stencil.Instance {
	return stencil.Instance{Kernel: stencil.Laplacian(), Size: stencil.Size3D(64, 64, 64)}
}

func testVectors(n int) []tunespace.Vector {
	out := make([]tunespace.Vector, n)
	for i := range out {
		out[i] = tunespace.Vector{Bx: 2 << (i % 9), By: 4, Bz: 4, U: i % 9, C: 1 + i%16}
	}
	return out
}

func TestBatchedPreservesOrder(t *testing.T) {
	q := testInstance()
	vs := testVectors(37)
	seq := evaluator()
	want := make([]float64, len(vs))
	for i, tv := range vs {
		want[i] = seq.Runtime(q, tv)
	}
	for _, workers := range []int{1, 2, 4, 8, 100} {
		be := Batched(evaluator(), workers)
		got := be.RuntimeBatch(q, vs)
		for i := range vs {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result %d = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestBatchedReturnsBatchEvaluatorsUnchanged(t *testing.T) {
	inner := Memoized(evaluator())
	if got := Batched(inner, 4); got != inner {
		t.Error("Batched re-wrapped an evaluator that already batches")
	}
}

func TestMemoizedCachesAcrossCalls(t *testing.T) {
	c := &countingEval{inner: evaluator()}
	m := Memoized(c)
	q := testInstance()
	vs := testVectors(10)

	first := m.RuntimeBatch(q, vs)
	if got := c.calls.Load(); got != 10 {
		t.Fatalf("first batch: %d evaluations, want 10", got)
	}
	second := m.RuntimeBatch(q, vs)
	if got := c.calls.Load(); got != 10 {
		t.Errorf("repeat batch re-evaluated: %d calls", got)
	}
	for i := range vs {
		if first[i] != second[i] {
			t.Fatalf("cached value %d differs", i)
		}
		if m.Runtime(q, vs[i]) != first[i] {
			t.Fatalf("single-call path misses cache at %d", i)
		}
	}
	if got := c.calls.Load(); got != 10 {
		t.Errorf("Runtime path re-evaluated cached keys: %d calls", got)
	}
}

func TestMemoizedDedupesWithinBatch(t *testing.T) {
	c := &countingEval{inner: evaluator()}
	m := Memoized(c)
	q := testInstance()
	v := tunespace.Vector{Bx: 32, By: 16, Bz: 8, U: 2, C: 2}
	w := tunespace.Vector{Bx: 64, By: 16, Bz: 8, U: 2, C: 2}
	out := m.RuntimeBatch(q, []tunespace.Vector{v, w, v, v, w})
	if got := c.calls.Load(); got != 2 {
		t.Errorf("%d evaluations for 2 distinct vectors", got)
	}
	if out[0] != out[2] || out[0] != out[3] || out[1] != out[4] {
		t.Error("duplicate slots differ")
	}
}

func TestMemoizedSeparatesInstances(t *testing.T) {
	m := Memoized(evaluator())
	v := tunespace.Vector{Bx: 32, By: 16, Bz: 8, U: 2, C: 2}
	a := m.Runtime(stencil.Instance{Kernel: stencil.Laplacian(), Size: stencil.Size3D(64, 64, 64)}, v)
	b := m.Runtime(stencil.Instance{Kernel: stencil.Laplacian(), Size: stencil.Size3D(128, 128, 128)}, v)
	if a == b {
		t.Error("different instances answered from one cache slot")
	}
}

func TestMemoizedConcurrentUse(t *testing.T) {
	m := Memoized(evaluator())
	q := testInstance()
	vs := testVectors(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				if g%2 == 0 {
					m.RuntimeBatch(q, vs)
				} else {
					for _, tv := range vs {
						m.Runtime(q, tv)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	seq := evaluator()
	for _, tv := range vs {
		if m.Runtime(q, tv) != seq.Runtime(q, tv) {
			t.Fatal("concurrent use corrupted cached values")
		}
	}
}

// TestGenerateParallelMatchesSequential is the dataset half of the PR's
// determinism guarantee: same seed → byte-identical Set at any worker count.
func TestGenerateParallelMatchesSequential(t *testing.T) {
	for _, target := range []int{50, 960, 3840} {
		opts := Options{TargetPoints: target, Seed: 7}
		seq, err := Generate(evaluator(), opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8, -1} {
			opts.Workers = workers
			par, err := Generate(evaluator(), opts)
			if err != nil {
				t.Fatal(err)
			}
			assertSetsIdentical(t, seq, par)
		}
	}
}

func TestGenerateParallelMatchesSequentialHeuristic(t *testing.T) {
	base := Options{TargetPoints: 960, Seed: 3, Sampling: HeuristicMixed}
	seq, err := Generate(evaluator(), base)
	if err != nil {
		t.Fatal(err)
	}
	base.Workers = 6
	par, err := Generate(evaluator(), base)
	if err != nil {
		t.Fatal(err)
	}
	assertSetsIdentical(t, seq, par)
}

func TestGenerateWithBatchEvaluator(t *testing.T) {
	plain, err := Generate(evaluator(), Options{TargetPoints: 960, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	batched, err := Generate(Batched(evaluator(), 4), Options{TargetPoints: 960, Seed: 5, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	assertSetsIdentical(t, plain, batched)
}

func assertSetsIdentical(t *testing.T, a, b *Set) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("set sizes differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Executions {
		x, y := a.Executions[i], b.Executions[i]
		if x.Instance.ID() != y.Instance.ID() || x.Tuning != y.Tuning || x.Runtime != y.Runtime {
			t.Fatalf("execution %d differs: %v vs %v", i, x, y)
		}
	}
	if a.Data.Len() != b.Data.Len() {
		t.Fatalf("dataset sizes differ: %d vs %d", a.Data.Len(), b.Data.Len())
	}
	for i := range a.Data.Examples {
		x, y := a.Data.Examples[i], b.Data.Examples[i]
		if x.Query != y.Query || x.Y != y.Y {
			t.Fatalf("example %d differs", i)
		}
		if x.X.NNZ() != y.X.NNZ() {
			t.Fatalf("example %d feature lengths differ", i)
		}
		for j := range x.X.Idx {
			if x.X.Idx[j] != y.X.Idx[j] || x.X.Val[j] != y.X.Val[j] {
				t.Fatalf("example %d feature %d differs", i, j)
			}
		}
	}
	if a.SimulatedExecTime != b.SimulatedExecTime || a.SimulatedCompileTime != b.SimulatedCompileTime {
		t.Error("accounted costs differ between worker counts")
	}
}

// nanEval answers NaN for one specific vector — the regression case for the
// memo cache, which must cache NaN results rather than re-evaluating them or
// filling their slot from another vector's value.
type nanEval struct {
	inner Evaluator
	bad   tunespace.Vector
	calls atomic.Int64
}

func (n *nanEval) Runtime(q stencil.Instance, t tunespace.Vector) float64 {
	n.calls.Add(1)
	if t == n.bad {
		return math.NaN()
	}
	return n.inner.Runtime(q, t)
}

func TestMemoizedCachesNaNRuntimes(t *testing.T) {
	bad := tunespace.Vector{Bx: 32, By: 16, Bz: 8, U: 2, C: 2}
	good := tunespace.Vector{Bx: 64, By: 16, Bz: 8, U: 2, C: 2}
	e := &nanEval{inner: evaluator(), bad: bad}
	m := Memoized(e)
	q := testInstance()

	first := m.RuntimeBatch(q, []tunespace.Vector{bad, good})
	if !math.IsNaN(first[0]) || math.IsNaN(first[1]) {
		t.Fatalf("first batch wrong: %v", first)
	}
	second := m.RuntimeBatch(q, []tunespace.Vector{bad, good})
	if !math.IsNaN(second[0]) {
		t.Errorf("cached NaN slot answered %v (filled from another vector?)", second[0])
	}
	if second[1] != first[1] {
		t.Errorf("good slot changed: %v vs %v", second[1], first[1])
	}
	if got := e.calls.Load(); got != 2 {
		t.Errorf("%d evaluations, want 2 (NaN must be cached too)", got)
	}
}
