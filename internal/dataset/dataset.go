// Package dataset implements the training-set generation of Section V-B:
// 60 automatically generated stencil codes built from the four Fig. 1 shape
// families at different offsets, buffer counts and data types; 200 training
// instances obtained by pairing those kernels with the paper's training input
// sizes (64³/128³/256³ for 3-D, 256²/512²/1024²/2048² for 2-D); and, per
// instance, a set of randomly generated tuning vectors — twice as many for
// 3-D kernels, whose search space is larger.
//
// Each execution is evaluated through an Evaluator (the perfmodel simulator
// or the real exec.Measurer), ranked within its instance, encoded into a
// feature vector and stored in an svmrank.Dataset. Measure-mode evaluation
// is precision-true: the float32 half of the training kernels is executed on
// float32 workspaces, so the dtype feature corresponds to genuinely
// different measured costs, exactly as on the paper's testbed.
package dataset

import (
	"fmt"
	"math/rand"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codegen"
	"repro/internal/feature"
	"repro/internal/shape"
	"repro/internal/stencil"
	"repro/internal/svmrank"
	"repro/internal/tunespace"
)

// Evaluator produces the runtime of one stencil execution. Implemented by
// *perfmodel.Model (simulation) and adapted from *exec.Measurer (wall clock).
type Evaluator interface {
	Runtime(q stencil.Instance, t tunespace.Vector) float64
}

// TrainingKernels generates the 60 training stencil codes of Sec. V-B: the
// full cross product of dimensionality {2,3} × shape family (Fig. 1) ×
// offset {1,2,3} × data type {float,double} (48 kernels), plus 12
// multi-buffer variants covering the 3-buffer access pattern the benchmark
// suite contains (tricubic, divergence).
func TrainingKernels() []*stencil.Kernel {
	var out []*stencil.Kernel
	add := func(dims int, fam shape.Family, off, buffers int, dt stencil.DataType) {
		name := fmt.Sprintf("train-%dd-%s-o%d-b%d-%s", dims, fam, off, buffers, dt)
		out = append(out, &stencil.Kernel{
			Name:    name,
			Shape:   shape.Generate(fam, dims, off),
			Buffers: buffers,
			Type:    dt,
		})
	}
	for _, dims := range []int{2, 3} {
		for _, fam := range shape.Families() {
			for off := 1; off <= 3; off++ {
				for _, dt := range []stencil.DataType{stencil.Float32, stencil.Float64} {
					add(dims, fam, off, 1, dt)
				}
			}
		}
	}
	// Multi-buffer variants: both dims × {hypercube, laplacian, line} ×
	// offsets {1,2} with 3 buffers (float), covering the tricubic- and
	// divergence-like access structures.
	for _, dims := range []int{2, 3} {
		for _, fam := range []shape.Family{shape.FamilyHypercube, shape.FamilyLaplacian, shape.FamilyLine} {
			for off := 1; off <= 2; off++ {
				add(dims, fam, off, 3, stencil.Float32)
			}
		}
	}
	return out
}

// TrainingInstances pairs the training kernels with the Sec. V-B input sizes
// and trims the list to exactly the paper's 200 instances.
func TrainingInstances() []stencil.Instance {
	var out []stencil.Instance
	for _, k := range TrainingKernels() {
		if k.Dims() == 2 {
			for _, s := range stencil.TrainingSizes2D() {
				out = append(out, stencil.Instance{Kernel: k, Size: s})
			}
		} else {
			for _, s := range stencil.TrainingSizes3D() {
				out = append(out, stencil.Instance{Kernel: k, Size: s})
			}
		}
	}
	// The cross product yields 210; the paper uses 200. Drop the largest
	// input of the last ten 2-D kernels (deterministic trim).
	if len(out) > 200 {
		trimmed := make([]stencil.Instance, 0, 200)
		drop := len(out) - 200
		// Walk backwards marking large-2-D instances to drop.
		toDrop := make(map[int]bool, drop)
		for i := len(out) - 1; i >= 0 && len(toDrop) < drop; i-- {
			q := out[i]
			if q.Size.Is2D() && q.Size.X == 2048 {
				toDrop[i] = true
			}
		}
		for i, q := range out {
			if !toDrop[i] {
				trimmed = append(trimmed, q)
			}
		}
		out = trimmed
	}
	return out
}

// Execution is one evaluated training point.
type Execution struct {
	Instance stencil.Instance
	Tuning   tunespace.Vector
	Runtime  float64
}

// Sampling selects how tuning vectors are drawn for each instance.
type Sampling int

const (
	// UniformRandom draws log-uniform random vectors (the paper's method).
	UniformRandom Sampling = iota
	// HeuristicMixed implements the future-work direction of the paper's
	// conclusion ("heuristic methods to gather training data"): half the
	// budget is random, a quarter samples the power-of-two lattice the
	// standalone tuner will later rank, and a quarter refines the best
	// vectors seen so far by mutation — concentrating training signal
	// near the performance frontier where ranking precision matters.
	HeuristicMixed
)

func (s Sampling) String() string {
	if s == HeuristicMixed {
		return "heuristic"
	}
	return "random"
}

// Options configures training-set generation.
type Options struct {
	// TargetPoints is the requested dataset size (a Table II row: 960 …
	// 32000). The actual size matches exactly: tuning-vector counts per
	// instance are balanced so 3-D instances get twice the 2-D count.
	TargetPoints int
	// Seed drives the random tuning-vector draws. Every instance gets its
	// own seed-derived RNG stream, so the generated Set depends only on
	// Seed — never on Workers or scheduling.
	Seed int64
	// Encoder defaults to the full feature encoder.
	Encoder *feature.Encoder
	// Sampling selects the tuning-vector draw strategy.
	Sampling Sampling
	// Workers bounds how many training instances are evaluated and encoded
	// concurrently. 0 or 1 generates sequentially; negative selects
	// GOMAXPROCS. The evaluator must be safe for concurrent use when more
	// than one worker runs (both in-tree evaluators are).
	Workers int
}

// Set is a generated training set with its provenance.
type Set struct {
	Data       *svmrank.Dataset
	Executions []Execution
	Instances  []stencil.Instance
	// SimulatedExecTime is the summed runtime of all training executions —
	// the "TS Generation" column of Table II (what a real testbed would
	// spend running the training codes).
	SimulatedExecTime time.Duration
	// SimulatedCompileTime is the accounted PATUS+gcc double-compilation
	// cost — the "TS Comp." column of Table II.
	SimulatedCompileTime time.Duration
	// WallTime is how long generation actually took in this process.
	WallTime time.Duration
}

// Generate builds a training set of exactly opt.TargetPoints executions.
func Generate(eval Evaluator, opt Options) (*Set, error) {
	if opt.TargetPoints <= 0 {
		return nil, fmt.Errorf("dataset: target points %d must be positive", opt.TargetPoints)
	}
	enc := opt.Encoder
	if enc == nil {
		enc = feature.NewEncoder()
	}
	start := time.Now()
	instances := TrainingInstances()

	// Budget split: 3-D instances receive twice the tuning vectors of 2-D
	// ones (Sec. V-B). Weight 1 for 2-D, 2 for 3-D.
	totalWeight := 0
	for _, q := range instances {
		if q.Size.Is2D() {
			totalWeight++
		} else {
			totalWeight += 2
		}
	}
	if opt.TargetPoints < totalWeight {
		// Small sets: take a prefix of instances, one (or two) points each,
		// preserving kernel diversity by striding through the list.
		return generateSmall(eval, enc, instances, opt, start)
	}

	base := opt.TargetPoints / totalWeight
	remainder := opt.TargetPoints - base*totalWeight

	jobs := make([]genJob, 0, len(instances))
	for _, q := range instances {
		n := base
		if !q.Size.Is2D() {
			n *= 2
		}
		// Spread the remainder over the leading instances.
		if remainder > 0 {
			n++
			remainder--
		}
		jobs = append(jobs, genJob{q: q, n: n})
	}
	set := &Set{Instances: instances, Data: &svmrank.Dataset{}}
	runJobs(set, eval, enc, jobs, opt)
	set.WallTime = time.Since(start)
	return set, nil
}

// generateSmall handles targets smaller than the instance count.
func generateSmall(eval Evaluator, enc *feature.Encoder, instances []stencil.Instance, opt Options, start time.Time) (*Set, error) {
	set := &Set{Data: &svmrank.Dataset{}}
	// At least 2 executions per chosen instance so each query yields pairs.
	perInstance := 2
	nInstances := opt.TargetPoints / perInstance
	if nInstances == 0 {
		nInstances = 1
		perInstance = opt.TargetPoints
	}
	stride := len(instances) / nInstances
	if stride == 0 {
		stride = 1
	}
	var jobs []genJob
	remaining := opt.TargetPoints
	for i := 0; i < len(instances) && remaining > 0; i += stride {
		q := instances[i]
		n := min(perInstance, remaining)
		set.Instances = append(set.Instances, q)
		jobs = append(jobs, genJob{q: q, n: n})
		remaining -= n
	}
	runJobs(set, eval, enc, jobs, opt)
	set.WallTime = time.Since(start)
	return set, nil
}

// genJob is one instance's share of the target: draw and evaluate n tuning
// vectors for q.
type genJob struct {
	q stencil.Instance
	n int
}

// partial is the output of one job, assembled into the Set in job order so
// the result is independent of scheduling.
type partial struct {
	executions  []Execution
	examples    []svmrank.Example
	execTime    time.Duration
	compileTime time.Duration
}

// runJobs evaluates every job — sequentially or on opt.Workers goroutines —
// and appends the results to set in job order. Each job draws from its own
// RNG stream derived from (opt.Seed, job index), so the assembled Set is
// byte-identical for every worker count.
func runJobs(set *Set, eval Evaluator, enc *feature.Encoder, jobs []genJob, opt Options) {
	workers := opt.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	workers = min(max(workers, 1), len(jobs))

	parts := make([]partial, len(jobs))
	run := func(i int) {
		rng := rand.New(rand.NewSource(jobSeed(opt.Seed, i)))
		parts[i] = generateInstance(eval, enc, jobs[i].q, jobs[i].n, rng, opt.Sampling)
	}
	if workers <= 1 {
		for i := range jobs {
			run(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(jobs) {
						return
					}
					run(i)
				}
			}()
		}
		wg.Wait()
	}
	total := 0
	for _, p := range parts {
		total += len(p.executions)
	}
	set.Executions = slices.Grow(set.Executions, total)
	set.Data.Examples = slices.Grow(set.Data.Examples, total)
	for _, p := range parts {
		set.Executions = append(set.Executions, p.executions...)
		set.Data.Examples = append(set.Data.Examples, p.examples...)
		set.SimulatedExecTime += p.execTime
		set.SimulatedCompileTime += p.compileTime
	}
}

// jobSeed derives an independent RNG stream per job from the user seed with
// a splitmix64 step — adjacent seeds/job indices decorrelate fully.
func jobSeed(seed int64, job int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(job+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// generateInstance draws n tuning vectors for q with the chosen sampling
// strategy, evaluates and encodes them, and accounts simulated costs.
func generateInstance(eval Evaluator, enc *feature.Encoder, q stencil.Instance, n int, rng *rand.Rand, sampling Sampling) partial {
	space := tunespace.NewSpace(q.Kernel.Dims())
	var vectors []tunespace.Vector
	if sampling == HeuristicMixed {
		vectors = heuristicSample(eval, q, space, n, rng)
	} else {
		vectors = space.RandomSet(rng, n)
	}
	p := partial{
		executions: make([]Execution, 0, len(vectors)),
		examples:   make([]svmrank.Example, 0, len(vectors)),
	}
	if be, ok := eval.(BatchEvaluator); ok {
		// Batch-capable evaluators cost the whole draw in one call (the
		// heuristic sampler already spent its refinement probes above).
		runtimes := be.RuntimeBatch(q, vectors)
		for i, tv := range vectors {
			p.add(enc, q, tv, runtimes[i])
		}
		return p
	}
	for _, tv := range vectors {
		p.add(enc, q, tv, eval.Runtime(q, tv))
	}
	return p
}

func (p *partial) add(enc *feature.Encoder, q stencil.Instance, tv tunespace.Vector, rt float64) {
	p.executions = append(p.executions, Execution{Instance: q, Tuning: tv, Runtime: rt})
	p.examples = append(p.examples, svmrank.Example{Query: q.ID(), X: enc.Encode(q, tv), Y: rt})
	p.execTime += time.Duration(rt * float64(time.Second))
	p.compileTime += codegen.CompileCost(q.Kernel, tv)
}

// heuristicSample implements the HeuristicMixed draw: ~half random, ~quarter
// power-of-two lattice points, ~quarter mutation-refined around the best
// vector evaluated so far.
func heuristicSample(eval Evaluator, q stencil.Instance, space tunespace.Space, n int, rng *rand.Rand) []tunespace.Vector {
	nRandom := (n + 1) / 2
	nLattice := n / 4
	nRefine := n - nRandom - nLattice

	out := space.RandomSet(rng, nRandom)
	lattice := space.Predefined()
	for i := 0; i < nLattice; i++ {
		out = append(out, lattice[rng.Intn(len(lattice))])
	}
	if nRefine > 0 {
		// Best of what we have so far (evaluations here are part of the
		// training-set generation budget).
		best := out[0]
		bestR := eval.Runtime(q, best)
		for _, v := range out[1:] {
			if r := eval.Runtime(q, v); r < bestR {
				best, bestR = v, r
			}
		}
		for i := 0; i < nRefine; i++ {
			out = append(out, space.Mutate(rng, best, 0.5))
		}
	}
	return out
}

// Len returns the number of training points.
func (s *Set) Len() int { return len(s.Executions) }
