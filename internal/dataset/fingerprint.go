package dataset

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"io"
	"math"
)

// Fingerprint returns a stable content hash of the training set: every
// execution's instance id, tuning vector and exact runtime bits, in set
// order. Two sets fingerprint identically iff they would fit the identical
// model, so the model store records it as dataset provenance. Generation is
// deterministic in (Seed, TargetPoints) at any worker count, which makes the
// fingerprint reproducible across machines for simulated training sets.
func (s *Set) Fingerprint() string {
	h := sha256.New()
	buf := make([]byte, 0, 48)
	for _, e := range s.Executions {
		io.WriteString(h, e.Instance.ID())
		buf = append(buf[:0], 0)
		buf = e.Tuning.AppendFields(buf)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Runtime))
		h.Write(buf)
	}
	return hex.EncodeToString(h.Sum(nil))
}
