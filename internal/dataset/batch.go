package dataset

import (
	"context"
	"math"
	"runtime"
	"sync"

	"repro/internal/stencil"
	"repro/internal/tunespace"
)

// BatchEvaluator is an Evaluator that can cost many tuning vectors of one
// instance in a single call, returning the runtimes in input order.
// Implementations may evaluate the vectors concurrently (the simulator) or
// serialize them (the wall-clock measurer, whose timings would corrupt each
// other if interleaved).
type BatchEvaluator interface {
	Evaluator
	RuntimeBatch(q stencil.Instance, ts []tunespace.Vector) []float64
}

// closer is the optional resource-release hook evaluators with worker pools
// implement; wrappers forward it so stenciltune.CloseEvaluator keeps working
// through any stack of adapters.
type closer interface{ Close() }

// Batched adapts eval into a BatchEvaluator that evaluates up to workers
// vectors concurrently. The workers convention matches Options.Workers
// everywhere in this codebase: 0 or 1 is the sequential adapter, negative
// selects GOMAXPROCS. The wrapped evaluator must be safe for concurrent use
// when more than one worker runs — both in-tree evaluators are:
// *perfmodel.Model is read-only, and *exec.Measurer serializes on its own
// lock. If eval already implements BatchEvaluator it is returned unchanged,
// trusting its own scheduling policy (compose Memoized *around* Batched,
// not inside it, to both cache and fan out).
func Batched(eval Evaluator, workers int) BatchEvaluator {
	return BatchedContext(context.Background(), eval, workers)
}

// BatchedContext is Batched with cooperative cancellation: once ctx is
// cancelled the fan-out stops issuing evaluations and every unevaluated slot
// reports +Inf (the same "avoid this" sentinel invalid configurations use),
// so a server request timeout actually stops simulator work instead of
// finishing the batch. With context.Background() the behaviour — and the
// result — is identical to Batched. Like Batched, an eval that already
// implements BatchEvaluator is returned unchanged with its own scheduling
// (and cancellation) policy.
func BatchedContext(ctx context.Context, eval Evaluator, workers int) BatchEvaluator {
	if be, ok := eval.(BatchEvaluator); ok {
		return be
	}
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &batched{ctx: ctx, eval: eval, workers: max(workers, 1)}
}

type batched struct {
	ctx     context.Context
	eval    Evaluator
	workers int
}

// Runtime implements Evaluator.
func (b *batched) Runtime(q stencil.Instance, t tunespace.Vector) float64 {
	return b.eval.Runtime(q, t)
}

// RuntimeBatch implements BatchEvaluator with chunked fan-out: the batch is
// split into at most `workers` contiguous chunks, one goroutine each, and
// every result lands at its input index — callers see input order no matter
// how the chunks are scheduled.
func (b *batched) RuntimeBatch(q stencil.Instance, ts []tunespace.Vector) []float64 {
	out := make([]float64, len(ts))
	w := min(b.workers, len(ts))
	if w <= 1 {
		for i, tv := range ts {
			if b.cancelled() {
				out[i] = math.Inf(1)
				continue
			}
			out[i] = b.eval.Runtime(q, tv)
		}
		return out
	}
	chunk := (len(ts) + w - 1) / w
	var wg sync.WaitGroup
	for s := 0; s < len(ts); s += chunk {
		e := min(s+chunk, len(ts))
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			for i := s; i < e; i++ {
				if b.cancelled() {
					out[i] = math.Inf(1)
					continue
				}
				out[i] = b.eval.Runtime(q, ts[i])
			}
		}(s, e)
	}
	wg.Wait()
	return out
}

// cancelled reports whether the adapter's context has been cancelled. The
// Background context of the plain Batched constructor can never cancel, so
// the sequential path stays behaviour-identical.
func (b *batched) cancelled() bool {
	return b.ctx != nil && b.ctx.Err() != nil
}

// Close forwards to the wrapped evaluator when it holds resources.
func (b *batched) Close() {
	if c, ok := b.eval.(closer); ok {
		c.Close()
	}
}

// memoKey identifies one execution. Instance is comparable (kernel pointer +
// size), which is conservative: two distinct *Kernel values never share an
// entry even if their definitions coincide.
type memoKey struct {
	q stencil.Instance
	t tunespace.Vector
}

// Memoized wraps eval with a concurrency-safe cache keyed by (instance,
// tuning vector), so repeated vectors — across search generations, engines
// sharing an evaluator, or ranking/validation passes — are never
// re-simulated or re-measured. Batch calls dedupe against the cache first
// and forward only the misses (as one batch when the inner evaluator
// supports it). Two goroutines racing on the same uncached key may both
// evaluate it; with the deterministic evaluators that is only duplicated
// work, never divergent answers. Close forwards to the wrapped evaluator.
func Memoized(eval Evaluator) BatchEvaluator {
	return &memoized{eval: eval, cache: make(map[memoKey]float64)}
}

type memoized struct {
	eval  Evaluator
	mu    sync.RWMutex
	cache map[memoKey]float64
}

// Runtime implements Evaluator.
func (m *memoized) Runtime(q stencil.Instance, t tunespace.Vector) float64 {
	k := memoKey{q, t}
	m.mu.RLock()
	val, ok := m.cache[k]
	m.mu.RUnlock()
	if ok {
		return val
	}
	val = m.eval.Runtime(q, t)
	m.mu.Lock()
	m.cache[k] = val
	m.mu.Unlock()
	return val
}

// RuntimeBatch implements BatchEvaluator.
func (m *memoized) RuntimeBatch(q stencil.Instance, ts []tunespace.Vector) []float64 {
	out := make([]float64, len(ts))
	// Gather the first occurrence of each uncached vector. A filled mask
	// (not a value sentinel) marks cache hits, so evaluators that answer
	// NaN for some configuration stay cacheable.
	filled := make([]bool, len(ts))
	var missVecs []tunespace.Vector
	missAt := make(map[tunespace.Vector]int)
	m.mu.RLock()
	for i, tv := range ts {
		if val, ok := m.cache[memoKey{q, tv}]; ok {
			out[i] = val
			filled[i] = true
			continue
		}
		if _, planned := missAt[tv]; !planned {
			missAt[tv] = len(missVecs)
			missVecs = append(missVecs, tv)
		}
	}
	m.mu.RUnlock()
	if len(missVecs) == 0 {
		return out
	}
	var vals []float64
	if be, ok := m.eval.(BatchEvaluator); ok {
		vals = be.RuntimeBatch(q, missVecs)
	} else {
		vals = make([]float64, len(missVecs))
		for i, tv := range missVecs {
			vals[i] = m.eval.Runtime(q, tv)
		}
	}
	m.mu.Lock()
	for i, tv := range missVecs {
		m.cache[memoKey{q, tv}] = vals[i]
	}
	m.mu.Unlock()
	for i, tv := range ts {
		if !filled[i] {
			out[i] = vals[missAt[tv]]
		}
	}
	return out
}

// Len returns the number of cached executions (for tests and diagnostics).
func (m *memoized) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.cache)
}

// Close forwards to the wrapped evaluator when it holds resources.
func (m *memoized) Close() {
	if c, ok := m.eval.(closer); ok {
		c.Close()
	}
}
