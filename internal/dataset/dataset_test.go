package dataset

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/perfmodel"
	"repro/internal/stencil"
)

func evaluator() Evaluator { return perfmodel.New(machine.XeonE52680v3()) }

func TestTrainingKernelsCount(t *testing.T) {
	ks := TrainingKernels()
	if len(ks) != 60 {
		t.Fatalf("got %d training kernels, want 60 (Sec. V-B)", len(ks))
	}
	names := map[string]bool{}
	n2, n3 := 0, 0
	for _, k := range ks {
		if err := k.Validate(); err != nil {
			t.Errorf("%s: %v", k.Name, err)
		}
		if names[k.Name] {
			t.Errorf("duplicate kernel name %s", k.Name)
		}
		names[k.Name] = true
		if k.Dims() == 2 {
			n2++
		} else {
			n3++
		}
	}
	if n2 == 0 || n3 == 0 {
		t.Errorf("need both 2-D (%d) and 3-D (%d) kernels", n2, n3)
	}
}

func TestTrainingKernelsCoverVariety(t *testing.T) {
	ks := TrainingKernels()
	var sawDouble, sawMultiBuffer, sawOffset3 bool
	for _, k := range ks {
		if k.Type == stencil.Float64 {
			sawDouble = true
		}
		if k.Buffers > 1 {
			sawMultiBuffer = true
		}
		if k.Shape.MaxOffset() == 3 {
			sawOffset3 = true
		}
	}
	if !sawDouble || !sawMultiBuffer || !sawOffset3 {
		t.Errorf("coverage gaps: double=%v multibuf=%v offset3=%v", sawDouble, sawMultiBuffer, sawOffset3)
	}
}

func TestTrainingInstancesCount(t *testing.T) {
	qs := TrainingInstances()
	if len(qs) != 200 {
		t.Fatalf("got %d instances, want 200 (Sec. V-B)", len(qs))
	}
	for _, q := range qs {
		if err := q.Validate(); err != nil {
			t.Errorf("%s: %v", q.ID(), err)
		}
	}
}

func TestTrainingInstancesUseTrainingSizes(t *testing.T) {
	want2 := map[string]bool{}
	for _, s := range stencil.TrainingSizes2D() {
		want2[s.String()] = true
	}
	want3 := map[string]bool{}
	for _, s := range stencil.TrainingSizes3D() {
		want3[s.String()] = true
	}
	for _, q := range TrainingInstances() {
		if q.Size.Is2D() && !want2[q.Size.String()] {
			t.Errorf("%s: unexpected 2-D size", q.ID())
		}
		if !q.Size.Is2D() && !want3[q.Size.String()] {
			t.Errorf("%s: unexpected 3-D size", q.ID())
		}
	}
}

func TestGenerateExactTargets(t *testing.T) {
	for _, target := range []int{960, 1920, 3840} {
		set, err := Generate(evaluator(), Options{TargetPoints: target, Seed: 1})
		if err != nil {
			t.Fatalf("target %d: %v", target, err)
		}
		if set.Len() != target {
			t.Errorf("target %d: got %d points", target, set.Len())
		}
		if set.Data.Len() != target {
			t.Errorf("target %d: dataset has %d examples", target, set.Data.Len())
		}
	}
}

func TestGenerate3DGetsTwiceTheTunings(t *testing.T) {
	set, err := Generate(evaluator(), Options{TargetPoints: 3840, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	dims := map[string]int{}
	for _, e := range set.Executions {
		counts[e.Instance.ID()]++
		dims[e.Instance.ID()] = e.Instance.Kernel.Dims()
	}
	var c2, c3, n2, n3 int
	for id, c := range counts {
		if dims[id] == 2 {
			c2 += c
			n2++
		} else {
			c3 += c
			n3++
		}
	}
	if n2 == 0 || n3 == 0 {
		t.Fatal("missing 2-D or 3-D instances")
	}
	avg2 := float64(c2) / float64(n2)
	avg3 := float64(c3) / float64(n3)
	ratio := avg3 / avg2
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("3-D/2-D tuning ratio = %.2f, want ~2 (Sec. V-B)", ratio)
	}
}

func TestGenerateSmallTarget(t *testing.T) {
	set, err := Generate(evaluator(), Options{TargetPoints: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 50 {
		t.Errorf("got %d points, want 50", set.Len())
	}
	// Small sets must still form rankable groups (≥2 per query mostly).
	groups := set.Data.Groups()
	pairable := 0
	for _, idx := range groups {
		if len(idx) >= 2 {
			pairable++
		}
	}
	if pairable == 0 {
		t.Error("no pairable query groups in small set")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(evaluator(), Options{TargetPoints: 0}); err == nil {
		t.Error("zero target accepted")
	}
	if _, err := Generate(evaluator(), Options{TargetPoints: -5}); err == nil {
		t.Error("negative target accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(evaluator(), Options{TargetPoints: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(evaluator(), Options{TargetPoints: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("non-deterministic length")
	}
	for i := range a.Executions {
		if a.Executions[i].Tuning != b.Executions[i].Tuning ||
			a.Executions[i].Runtime != b.Executions[i].Runtime {
			t.Fatal("non-deterministic generation")
		}
	}
}

func TestGenerateAccountsCosts(t *testing.T) {
	set, err := Generate(evaluator(), Options{TargetPoints: 960, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if set.SimulatedExecTime <= 0 {
		t.Error("simulated execution time not accounted")
	}
	if set.SimulatedCompileTime <= 0 {
		t.Error("simulated compile time not accounted")
	}
	// Table II narrative: compile cost dominates generation cost.
	if set.SimulatedCompileTime < set.SimulatedExecTime {
		t.Errorf("compile %v should exceed execution %v (Table II shape)",
			set.SimulatedCompileTime, set.SimulatedExecTime)
	}
	if set.WallTime <= 0 {
		t.Error("wall time not recorded")
	}
}

func TestExecutionRuntimesPositive(t *testing.T) {
	set, err := Generate(evaluator(), Options{TargetPoints: 400, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range set.Executions {
		if e.Runtime <= 0 {
			t.Fatalf("%s %v: runtime %v", e.Instance.ID(), e.Tuning, e.Runtime)
		}
		if err := e.Tuning.Validate(e.Instance.Kernel.Dims()); err != nil {
			t.Fatalf("invalid tuning in set: %v", err)
		}
	}
}

func TestHeuristicSampling(t *testing.T) {
	set, err := Generate(evaluator(), Options{TargetPoints: 960, Seed: 8, Sampling: HeuristicMixed})
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 960 {
		t.Fatalf("got %d points, want 960", set.Len())
	}
	// Heuristic sets must contain power-of-two lattice points.
	isPow2 := func(n int) bool { return n > 0 && n&(n-1) == 0 }
	lattice := 0
	for _, e := range set.Executions {
		tv := e.Tuning
		if isPow2(tv.Bx) && isPow2(tv.By) && (tv.Bz == 1 || isPow2(tv.Bz)) && isPow2(tv.C) {
			lattice++
		}
	}
	if lattice < set.Len()/10 {
		t.Errorf("only %d/%d lattice-like points in heuristic set", lattice, set.Len())
	}
	for _, e := range set.Executions {
		if err := e.Tuning.Validate(e.Instance.Kernel.Dims()); err != nil {
			t.Fatalf("heuristic sample invalid: %v", err)
		}
	}
}

func TestHeuristicSamplingConcentratesNearOptimum(t *testing.T) {
	// The refined quarter should give heuristic sets a better best-seen
	// runtime per instance than uniform ones on average.
	eval := evaluator()
	uni, err := Generate(eval, Options{TargetPoints: 1920, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	heu, err := Generate(eval, Options{TargetPoints: 1920, Seed: 9, Sampling: HeuristicMixed})
	if err != nil {
		t.Fatal(err)
	}
	bestPer := func(s *Set) map[string]float64 {
		m := map[string]float64{}
		for _, e := range s.Executions {
			id := e.Instance.ID()
			if cur, ok := m[id]; !ok || e.Runtime < cur {
				m[id] = e.Runtime
			}
		}
		return m
	}
	ub, hb := bestPer(uni), bestPer(heu)
	wins := 0
	total := 0
	for id, u := range ub {
		if h, ok := hb[id]; ok {
			total++
			if h <= u {
				wins++
			}
		}
	}
	if total == 0 {
		t.Fatal("no common instances")
	}
	if wins*2 < total {
		t.Errorf("heuristic sampling found better-or-equal best in only %d/%d instances", wins, total)
	}
}

func TestSamplingString(t *testing.T) {
	if UniformRandom.String() != "random" || HeuristicMixed.String() != "heuristic" {
		t.Error("sampling names wrong")
	}
}
