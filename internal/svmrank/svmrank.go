// Package svmrank is a from-scratch implementation of the ordinal-regression
// (ranking) support vector machine of Section IV of the paper, following the
// formulation of Eq. (3): a linear scoring function w is trained on pairwise
// preference constraints generated *within* each query group (stencil
// instance), so that better-performing executions score higher:
//
//	w·x_i ≥ w·x_j + 1 − ξ_ij   for every within-query pair with y_i < y_j
//	min  ½‖w‖² + (C/m′)·Σ ξ_ij
//
// where y is the measured runtime (smaller is better) and m′ the number of
// pairs. Two solvers are provided: dual coordinate descent (the default; the
// standard exact solver for the L1-hinge linear SVM) and averaged stochastic
// subgradient descent (for the ablation study). Both operate on implicit
// difference vectors — pairs are stored as index pairs and all algebra runs
// on the sparse feature vectors directly.
package svmrank

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/feature"
)

// Example is one stencil execution in the training set: its feature vector,
// its query (the stencil instance it belongs to) and its runtime.
type Example struct {
	Query string
	X     feature.Vector
	Y     float64 // runtime in seconds; smaller is better
}

// Dataset is an ordered collection of examples. Order is preserved so pair
// generation is deterministic.
type Dataset struct {
	Examples []Example
}

// Add appends an example.
func (d *Dataset) Add(e Example) { d.Examples = append(d.Examples, e) }

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.Examples) }

// Queries returns the distinct query ids in first-appearance order.
func (d *Dataset) Queries() []string {
	seen := make(map[string]bool)
	var out []string
	for _, e := range d.Examples {
		if !seen[e.Query] {
			seen[e.Query] = true
			out = append(out, e.Query)
		}
	}
	return out
}

// Groups returns example indices per query, in first-appearance order.
func (d *Dataset) Groups() map[string][]int {
	g := make(map[string][]int)
	for i, e := range d.Examples {
		g[e.Query] = append(g[e.Query], i)
	}
	return g
}

// Pair is a preference constraint: example I should outrank example J
// (y_I < y_J).
type Pair struct {
	I, J int
}

// PairStrategy selects how within-query preference pairs are generated; the
// choice is one of the ablation dimensions in DESIGN.md §4.
type PairStrategy int

const (
	// FullPairs generates every ordered pair within a query: O(E²) pairs.
	FullPairs PairStrategy = iota
	// AdjacentPairs sorts each query by runtime and pairs each example
	// with its Window successors: O(E·Window) pairs. This is the default:
	// it preserves the full ordering information transitively at a
	// fraction of the cost.
	AdjacentPairs
	// CappedPairs draws at most MaxPerQuery random full pairs per query.
	CappedPairs
)

func (s PairStrategy) String() string {
	switch s {
	case FullPairs:
		return "full"
	case AdjacentPairs:
		return "adjacent"
	case CappedPairs:
		return "capped"
	default:
		return "?"
	}
}

// PairOptions configures pair generation.
type PairOptions struct {
	Strategy    PairStrategy
	Window      int // AdjacentPairs: successors per example (default 4)
	MaxPerQuery int // CappedPairs: pair budget per query (default 256)
	Seed        int64
}

// GeneratePairs builds the preference pairs of Eq. (3): only executions of
// the same query are compared; ties generate no pair.
func GeneratePairs(d *Dataset, opt PairOptions) []Pair {
	if opt.Window <= 0 {
		opt.Window = 4
	}
	if opt.MaxPerQuery <= 0 {
		opt.MaxPerQuery = 256
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	var pairs []Pair
	for _, q := range d.Queries() {
		idx := append([]int(nil), d.Groups()[q]...)
		// Sort group by runtime ascending (best first).
		sort.SliceStable(idx, func(a, b int) bool {
			return d.Examples[idx[a]].Y < d.Examples[idx[b]].Y
		})
		switch opt.Strategy {
		case FullPairs:
			for a := 0; a < len(idx); a++ {
				for b := a + 1; b < len(idx); b++ {
					if d.Examples[idx[a]].Y < d.Examples[idx[b]].Y {
						pairs = append(pairs, Pair{idx[a], idx[b]})
					}
				}
			}
		case AdjacentPairs:
			for a := 0; a < len(idx); a++ {
				for w := 1; w <= opt.Window && a+w < len(idx); w++ {
					if d.Examples[idx[a]].Y < d.Examples[idx[a+w]].Y {
						pairs = append(pairs, Pair{idx[a], idx[a+w]})
					}
				}
			}
		case CappedPairs:
			n := len(idx)
			budget := opt.MaxPerQuery
			for tries := 0; budget > 0 && tries < 20*opt.MaxPerQuery && n >= 2; tries++ {
				a, b := rng.Intn(n), rng.Intn(n)
				if a == b {
					continue
				}
				if a > b {
					a, b = b, a
				}
				if d.Examples[idx[a]].Y < d.Examples[idx[b]].Y {
					pairs = append(pairs, Pair{idx[a], idx[b]})
					budget--
				}
			}
		}
	}
	return pairs
}

// Solver selects the optimization algorithm.
type Solver int

const (
	// DualCoordinateDescent is the exact L1-hinge solver (default).
	DualCoordinateDescent Solver = iota
	// SGD is averaged stochastic subgradient descent.
	SGD
)

func (s Solver) String() string {
	switch s {
	case DualCoordinateDescent:
		return "dcd"
	case SGD:
		return "sgd"
	default:
		return "?"
	}
}

// Options configures training.
type Options struct {
	// C is the regularization trade-off of Eq. (3); the paper uses 0.01.
	C float64
	// NormalizeC divides C by the number of queries, matching SVM-Rank's
	// objective scaling (Joachims' svm_rank divides the -c value by the
	// query count). Default true.
	NormalizeC *bool
	// Epochs bounds the number of passes over the pairs (default 50).
	Epochs int
	// Tol is the duality-gap style stopping tolerance for DCD (default 1e-4).
	Tol float64
	// Solver selects DCD (default) or SGD.
	Solver Solver
	// Pairs configures pair generation.
	Pairs PairOptions
	// Seed drives shuffling.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.C == 0 {
		o.C = 0.01
	}
	if o.Epochs == 0 {
		o.Epochs = 50
	}
	if o.Tol == 0 {
		o.Tol = 1e-4
	}
	if o.NormalizeC == nil {
		t := true
		o.NormalizeC = &t
	}
	return o
}

// Stats reports what training did.
type Stats struct {
	Pairs      int
	Epochs     int
	Violations int // margin violations at the end of training
	Objective  float64
	TrainTime  time.Duration
}

// Model is the learned linear ranking function r(q,t) = w·φ(q,t); *higher*
// scores rank better (Sec. IV-C's projection onto w).
//
// A Model is read-only after Train/LoadFile returns: every method only reads
// W, so one model may score, rank and batch-score from any number of
// goroutines concurrently. (Mutating W while scoring is the caller's race.)
type Model struct {
	W []float64
	// C records the regularization used, for provenance.
	C float64
}

// Score returns the ranking score of a feature vector.
func (m *Model) Score(x feature.Vector) float64 { return x.Dot(m.W) }

// scoreParallelThreshold is the candidate count above which ScoreBatch fans
// out; below it the goroutine handoff costs more than the dot products.
const scoreParallelThreshold = 4096

// ScoreBatch scores every vector, in input order. Large batches (the 8640
// predefined 3-D configurations, for instance) are scored on GOMAXPROCS
// goroutines; each score depends only on its own input, so the output is
// identical to a sequential loop.
func (m *Model) ScoreBatch(xs []feature.Vector) []float64 {
	scores := make([]float64, len(xs))
	workers := runtime.GOMAXPROCS(0)
	if len(xs) < scoreParallelThreshold || workers == 1 {
		for i, x := range xs {
			scores[i] = x.Dot(m.W)
		}
		return scores
	}
	chunk := (len(xs) + workers - 1) / workers
	var wg sync.WaitGroup
	for s := 0; s < len(xs); s += chunk {
		e := min(s+chunk, len(xs))
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			for i := s; i < e; i++ {
				scores[i] = xs[i].Dot(m.W)
			}
		}(s, e)
	}
	wg.Wait()
	return scores
}

// Rank returns the indices of xs ordered best-first (descending score).
// Deterministic: equal scores keep input order.
func (m *Model) Rank(xs []feature.Vector) []int {
	order, _ := m.RankWithScores(xs)
	return order
}

// RankWithScores is Rank returning also the score of every input vector
// (index-aligned with xs, not with the permutation), so consumers that need
// both — the serving API's scored rankings — pay one ScoreBatch pass.
func (m *Model) RankWithScores(xs []feature.Vector) ([]int, []float64) {
	scores := m.ScoreBatch(xs)
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	return idx, scores
}

// ArgBestBatch returns the index of the highest-scoring vector without
// sorting (-1 for empty input); ties keep the earliest index, matching
// Rank's first entry.
func (m *Model) ArgBestBatch(xs []feature.Vector) int {
	scores := m.ScoreBatch(xs)
	best, bestScore := -1, math.Inf(-1)
	for i, s := range scores {
		if s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// Best returns the index of the top-ranked vector (-1 for empty input).
func (m *Model) Best(xs []feature.Vector) int { return m.ArgBestBatch(xs) }

// Train fits a ranking model on the dataset.
func Train(d *Dataset, opt Options) (*Model, Stats, error) {
	opt = opt.withDefaults()
	if d.Len() == 0 {
		return nil, Stats{}, errors.New("svmrank: empty dataset")
	}
	if opt.C <= 0 {
		return nil, Stats{}, fmt.Errorf("svmrank: C = %v must be positive", opt.C)
	}
	pairs := GeneratePairs(d, opt.Pairs)
	if len(pairs) == 0 {
		return nil, Stats{}, errors.New("svmrank: no orderable pairs (all queries degenerate)")
	}

	perPair := opt.C
	if *opt.NormalizeC {
		perPair = opt.C / float64(len(d.Queries()))
	}

	start := time.Now()
	var w []float64
	var epochs int
	switch opt.Solver {
	case SGD:
		w, epochs = trainSGD(d, pairs, perPair, opt)
	default:
		w, epochs = trainDCD(d, pairs, perPair, opt)
	}
	m := &Model{W: w, C: opt.C}

	stats := Stats{
		Pairs:     len(pairs),
		Epochs:    epochs,
		TrainTime: time.Since(start),
	}
	var reg float64
	for _, v := range w {
		reg += v * v
	}
	obj := 0.5 * reg
	for _, p := range pairs {
		margin := feature.DiffDot(w, d.Examples[p.I].X, d.Examples[p.J].X)
		if margin < 1 {
			stats.Violations++
			obj += perPair * (1 - margin)
		}
	}
	stats.Objective = obj
	return m, stats, nil
}

// trainDCD runs dual coordinate descent on the pairwise L1-hinge dual:
// each pair p has a dual variable α_p ∈ [0, U] with U the per-pair slack
// cost; w = Σ α_p (x_i − x_j).
func trainDCD(d *Dataset, pairs []Pair, perPair float64, opt Options) ([]float64, int) {
	U := perPair
	w := make([]float64, feature.Dim)
	alpha := make([]float64, len(pairs))

	// Precompute the diagonal Q_pp = ‖x_i − x_j‖².
	qdiag := make([]float64, len(pairs))
	for p, pr := range pairs {
		qdiag[p] = feature.DiffSquaredNorm(d.Examples[pr.I].X, d.Examples[pr.J].X)
		if qdiag[p] == 0 {
			qdiag[p] = math.Inf(1) // identical encodings: pair carries no signal
		}
	}

	rng := rand.New(rand.NewSource(opt.Seed))
	order := make([]int, len(pairs))
	for i := range order {
		order[i] = i
	}

	epoch := 0
	for ; epoch < opt.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		maxViolation := 0.0
		for _, p := range order {
			pr := pairs[p]
			xi, xj := d.Examples[pr.I].X, d.Examples[pr.J].X
			g := feature.DiffDot(w, xi, xj) - 1 // gradient of dual wrt α_p

			// Projected gradient for the box [0, U].
			pg := g
			if alpha[p] == 0 && g > 0 {
				pg = 0
			} else if alpha[p] == U && g < 0 {
				pg = 0
			}
			if math.Abs(pg) > maxViolation {
				maxViolation = math.Abs(pg)
			}
			if pg == 0 || math.IsInf(qdiag[p], 1) {
				continue
			}
			old := alpha[p]
			na := old - g/qdiag[p]
			if na < 0 {
				na = 0
			} else if na > U {
				na = U
			}
			if na == old {
				continue
			}
			alpha[p] = na
			feature.AddDiffInto(w, xi, xj, na-old)
		}
		if maxViolation < opt.Tol {
			epoch++
			break
		}
	}
	return w, epoch
}

// trainSGD runs averaged stochastic subgradient descent on the primal
// objective F(w) = ½‖w‖² + perPair·Σ_p hinge_p. A uniformly drawn pair p
// gives the unbiased estimate ½‖w‖² + perPair·m·hinge_p; the ½‖w‖² term
// makes F 1-strongly convex, so the classic 1/(t+1) step size applies.
func trainSGD(d *Dataset, pairs []Pair, perPair float64, opt Options) ([]float64, int) {
	m := float64(len(pairs))
	w := make([]float64, feature.Dim)
	avg := make([]float64, feature.Dim)
	rng := rand.New(rand.NewSource(opt.Seed))

	t := 0
	for epoch := 0; epoch < opt.Epochs; epoch++ {
		for range pairs {
			t++
			p := pairs[rng.Intn(len(pairs))]
			eta := 1 / float64(t+1)
			xi, xj := d.Examples[p.I].X, d.Examples[p.J].X
			margin := feature.DiffDot(w, xi, xj)
			// Gradient step: shrink from the regularizer, then the hinge
			// subgradient if the pair violates the margin.
			shrink := 1 - eta
			for k := range w {
				w[k] *= shrink
			}
			if margin < 1 {
				feature.AddDiffInto(w, xi, xj, eta*perPair*m)
			}
			// Running average of iterates.
			for k := range w {
				avg[k] += (w[k] - avg[k]) / float64(t)
			}
		}
	}
	return avg, opt.Epochs
}
