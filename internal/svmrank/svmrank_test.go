package svmrank

import (
	"bytes"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/feature"
	"repro/internal/ranking"
	"repro/internal/stencil"
	"repro/internal/tunespace"
)

// synthDataset builds a dataset whose runtimes are a noisy linear function of
// a few feature components — separable enough that a ranking SVM must learn
// to order it nearly perfectly.
func synthDataset(queries, perQuery int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	enc := feature.NewEncoder()
	d := &Dataset{}
	// Use real encodings of real instances so the test exercises the same
	// sparse paths as production.
	kernels := []*stencil.Kernel{stencil.Laplacian(), stencil.Gradient(), stencil.Laplacian6()}
	sizes := []stencil.Size{stencil.Size3D(64, 64, 64), stencil.Size3D(128, 128, 128)}
	space := tunespace.NewSpace(3)
	qi := 0
	for _, k := range kernels {
		for _, s := range sizes {
			if qi >= queries {
				break
			}
			qi++
			q := stencil.Instance{Kernel: k, Size: s}
			for e := 0; e < perQuery; e++ {
				tv := space.Random(rng)
				x := enc.Encode(q, tv)
				// Synthetic runtime: prefers large bx, small unroll.
				y := 10 - 5*math.Log2(float64(tv.Bx))/10 + 0.5*float64(tv.U)/8 +
					0.01*rng.Float64()
				d.Add(Example{Query: q.ID(), X: x, Y: y})
			}
		}
	}
	return d
}

func TestGeneratePairsFull(t *testing.T) {
	d := &Dataset{}
	for i, y := range []float64{3, 1, 2} {
		d.Add(Example{Query: "q", X: feature.Vector{}, Y: y})
		_ = i
	}
	pairs := GeneratePairs(d, PairOptions{Strategy: FullPairs})
	if len(pairs) != 3 {
		t.Fatalf("pairs = %d, want 3", len(pairs))
	}
	for _, p := range pairs {
		if d.Examples[p.I].Y >= d.Examples[p.J].Y {
			t.Fatalf("pair (%d,%d) not ordered: %v >= %v", p.I, p.J, d.Examples[p.I].Y, d.Examples[p.J].Y)
		}
	}
}

func TestGeneratePairsRespectsQueryBoundaries(t *testing.T) {
	// Cross-query comparisons must never be generated (Sec. IV-D).
	d := &Dataset{}
	d.Add(Example{Query: "a", Y: 1})
	d.Add(Example{Query: "a", Y: 2})
	d.Add(Example{Query: "b", Y: 3})
	d.Add(Example{Query: "b", Y: 4})
	pairs := GeneratePairs(d, PairOptions{Strategy: FullPairs})
	if len(pairs) != 2 {
		t.Fatalf("pairs = %d, want 2 (1 per query)", len(pairs))
	}
	for _, p := range pairs {
		if d.Examples[p.I].Query != d.Examples[p.J].Query {
			t.Fatalf("cross-query pair (%d,%d)", p.I, p.J)
		}
	}
}

func TestGeneratePairsSkipsTies(t *testing.T) {
	d := &Dataset{}
	d.Add(Example{Query: "q", Y: 5})
	d.Add(Example{Query: "q", Y: 5})
	pairs := GeneratePairs(d, PairOptions{Strategy: FullPairs})
	if len(pairs) != 0 {
		t.Fatalf("tie generated %d pairs", len(pairs))
	}
}

func TestGeneratePairsAdjacentWindow(t *testing.T) {
	d := &Dataset{}
	for _, y := range []float64{1, 2, 3, 4, 5, 6} {
		d.Add(Example{Query: "q", Y: y})
	}
	pairs := GeneratePairs(d, PairOptions{Strategy: AdjacentPairs, Window: 2})
	// Each of the 6 sorted items pairs with up to 2 successors: 5+4 = 9.
	if len(pairs) != 9 {
		t.Fatalf("pairs = %d, want 9", len(pairs))
	}
}

func TestGeneratePairsCapped(t *testing.T) {
	d := &Dataset{}
	for i := 0; i < 50; i++ {
		d.Add(Example{Query: "q", Y: float64(i)})
	}
	pairs := GeneratePairs(d, PairOptions{Strategy: CappedPairs, MaxPerQuery: 30, Seed: 7})
	if len(pairs) != 30 {
		t.Fatalf("pairs = %d, want 30", len(pairs))
	}
	for _, p := range pairs {
		if d.Examples[p.I].Y >= d.Examples[p.J].Y {
			t.Fatal("capped pair not ordered")
		}
	}
}

func TestGeneratePairsSingletonQuery(t *testing.T) {
	d := &Dataset{}
	d.Add(Example{Query: "only", Y: 1})
	for _, s := range []PairStrategy{FullPairs, AdjacentPairs, CappedPairs} {
		if pairs := GeneratePairs(d, PairOptions{Strategy: s}); len(pairs) != 0 {
			t.Errorf("%v: singleton query produced %d pairs", s, len(pairs))
		}
	}
}

func TestTrainErrors(t *testing.T) {
	if _, _, err := Train(&Dataset{}, Options{}); err == nil {
		t.Error("empty dataset accepted")
	}
	d := &Dataset{}
	d.Add(Example{Query: "q", Y: 1})
	if _, _, err := Train(d, Options{}); err == nil {
		t.Error("pairless dataset accepted")
	}
	d.Add(Example{Query: "q", Y: 2})
	if _, _, err := Train(d, Options{C: -1}); err == nil {
		t.Error("negative C accepted")
	}
}

func TestTrainLearnsSeparableOrdering(t *testing.T) {
	d := synthDataset(6, 40, 1)
	for _, solver := range []Solver{DualCoordinateDescent, SGD} {
		model, stats, err := Train(d, Options{C: 0.01, Solver: solver, Epochs: 30,
			Pairs: PairOptions{Strategy: AdjacentPairs, Window: 4}})
		if err != nil {
			t.Fatalf("%v: %v", solver, err)
		}
		if stats.Pairs == 0 {
			t.Fatalf("%v: no pairs", solver)
		}
		// Kendall τ between predicted scores (negated: higher=better) and
		// runtimes per query must be strongly positive.
		groups := d.Groups()
		var worst float64 = 1
		for _, idx := range groups {
			ys := make([]float64, len(idx))
			scores := make([]float64, len(idx))
			for i, e := range idx {
				ys[i] = d.Examples[e].Y
				scores[i] = -model.Score(d.Examples[e].X)
			}
			tau := ranking.KendallTau(ys, scores)
			if tau < worst {
				worst = tau
			}
		}
		if worst < 0.6 {
			t.Errorf("%v: worst per-query τ = %.3f, want ≥ 0.6", solver, worst)
		}
	}
}

func TestDCDBeatsRandomOnRealModelData(t *testing.T) {
	d := synthDataset(6, 60, 2)
	model, _, err := Train(d, Options{C: 0.01, Epochs: 40})
	if err != nil {
		t.Fatal(err)
	}
	var nonzero int
	for _, w := range model.W {
		if w != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("trained weight vector is all zero")
	}
}

func TestModelRankOrdersByScore(t *testing.T) {
	m := &Model{W: make([]float64, feature.Dim)}
	m.W[0] = 1
	xs := []feature.Vector{
		{Idx: []int32{0}, Val: []float64{0.2}},
		{Idx: []int32{0}, Val: []float64{0.9}},
		{Idx: []int32{0}, Val: []float64{0.5}},
	}
	order := m.Rank(xs)
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("Rank = %v, want %v", order, want)
		}
	}
	if best := m.Best(xs); best != 1 {
		t.Errorf("Best = %d, want 1", best)
	}
	if best := m.Best(nil); best != -1 {
		t.Errorf("Best(nil) = %d, want -1", best)
	}
}

func TestRankDeterministicOnTies(t *testing.T) {
	m := &Model{W: make([]float64, feature.Dim)}
	xs := []feature.Vector{{}, {}, {}} // all score 0
	order := m.Rank(xs)
	for i, o := range order {
		if o != i {
			t.Fatalf("tied Rank = %v, want input order", order)
		}
	}
}

func TestHigherCFitsTighter(t *testing.T) {
	// More regularization freedom (larger C) must not increase the number of
	// margin violations on the training set.
	d := synthDataset(4, 30, 3)
	_, weak, err := Train(d, Options{C: 1e-6, Epochs: 60, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, strong, err := Train(d, Options{C: 10, Epochs: 60, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if strong.Violations > weak.Violations {
		t.Errorf("C=10 violations %d > C=1e-6 violations %d", strong.Violations, weak.Violations)
	}
}

func TestTrainDeterministicGivenSeed(t *testing.T) {
	d := synthDataset(3, 25, 4)
	m1, _, err := Train(d, Options{C: 0.01, Seed: 42, Epochs: 10})
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := Train(d, Options{C: 0.01, Seed: 42, Epochs: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1.W {
		if m1.W[i] != m2.W[i] {
			t.Fatal("training not deterministic for fixed seed")
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	d := synthDataset(3, 20, 5)
	_, stats, err := Train(d, Options{C: 0.01, Epochs: 15})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pairs <= 0 || stats.Epochs <= 0 {
		t.Errorf("stats not populated: %+v", stats)
	}
	if stats.Objective <= 0 {
		t.Errorf("objective = %v, want > 0", stats.Objective)
	}
	if stats.TrainTime <= 0 {
		t.Errorf("train time = %v", stats.TrainTime)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d := synthDataset(3, 20, 6)
	m, _, err := Train(d, Options{C: 0.01, Epochs: 10})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.C != m.C {
		t.Errorf("C = %v, want %v", loaded.C, m.C)
	}
	for i := range m.W {
		if loaded.W[i] != m.W[i] {
			t.Fatal("weights differ after round trip")
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	d := synthDataset(2, 15, 7)
	m, _, err := Train(d, Options{C: 0.01, Epochs: 5})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/model.gob"
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.W) != len(m.W) {
		t.Fatal("dim mismatch after file round trip")
	}
	if _, err := LoadFile(t.TempDir() + "/missing.gob"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestDatasetQueriesAndGroups(t *testing.T) {
	d := &Dataset{}
	d.Add(Example{Query: "b", Y: 1})
	d.Add(Example{Query: "a", Y: 2})
	d.Add(Example{Query: "b", Y: 3})
	qs := d.Queries()
	if len(qs) != 2 || qs[0] != "b" || qs[1] != "a" {
		t.Errorf("Queries = %v (first-appearance order expected)", qs)
	}
	g := d.Groups()
	if len(g["b"]) != 2 || len(g["a"]) != 1 {
		t.Errorf("Groups = %v", g)
	}
}

func TestStrategyAndSolverStrings(t *testing.T) {
	if FullPairs.String() != "full" || AdjacentPairs.String() != "adjacent" ||
		CappedPairs.String() != "capped" || PairStrategy(9).String() != "?" {
		t.Error("strategy names wrong")
	}
	if DualCoordinateDescent.String() != "dcd" || SGD.String() != "sgd" || Solver(9).String() != "?" {
		t.Error("solver names wrong")
	}
}

func TestDatasetSaveLoadRoundTrip(t *testing.T) {
	d := synthDataset(3, 20, 8)
	var buf bytes.Buffer
	if err := SaveDataset(&buf, d); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != d.Len() {
		t.Fatalf("len %d, want %d", loaded.Len(), d.Len())
	}
	for i := range d.Examples {
		a, b := d.Examples[i], loaded.Examples[i]
		if a.Query != b.Query || a.Y != b.Y || a.X.NNZ() != b.X.NNZ() {
			t.Fatal("examples differ after round trip")
		}
	}
	// A model trained on the loaded set matches one trained on the original.
	m1, _, err := Train(d, Options{C: 0.01, Seed: 5, Epochs: 10})
	if err != nil {
		t.Fatal(err)
	}
	m2, err2 := func() (*Model, error) {
		m, _, err := Train(loaded, Options{C: 0.01, Seed: 5, Epochs: 10})
		return m, err
	}()
	if err2 != nil {
		t.Fatal(err2)
	}
	for i := range m1.W {
		if m1.W[i] != m2.W[i] {
			t.Fatal("models differ after dataset round trip")
		}
	}
}

func TestLoadDatasetRejectsGarbage(t *testing.T) {
	if _, err := LoadDataset(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("garbage dataset accepted")
	}
}

func TestScoreBatchMatchesScore(t *testing.T) {
	d := synthDataset(4, 30, 1)
	m, _, err := Train(d, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]feature.Vector, d.Len())
	for i, e := range d.Examples {
		xs[i] = e.X
	}
	scores := m.ScoreBatch(xs)
	if len(scores) != len(xs) {
		t.Fatalf("got %d scores for %d vectors", len(scores), len(xs))
	}
	for i, x := range xs {
		if scores[i] != m.Score(x) {
			t.Fatalf("score %d: batch %v != single %v", i, scores[i], m.Score(x))
		}
	}
}

func TestArgBestBatchMatchesRank(t *testing.T) {
	d := synthDataset(6, 40, 2)
	m, _, err := Train(d, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]feature.Vector, d.Len())
	for i, e := range d.Examples {
		xs[i] = e.X
	}
	if got, want := m.ArgBestBatch(xs), m.Rank(xs)[0]; got != want {
		t.Errorf("ArgBestBatch = %d, Rank[0] = %d", got, want)
	}
	if m.ArgBestBatch(nil) != -1 {
		t.Error("empty input should return -1")
	}
}

func TestModelConcurrentScoring(t *testing.T) {
	d := synthDataset(4, 30, 1)
	m, _, err := Train(d, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]feature.Vector, d.Len())
	for i, e := range d.Examples {
		xs[i] = e.X
	}
	want := m.ScoreBatch(xs)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				got := m.ScoreBatch(xs)
				for i := range got {
					if got[i] != want[i] {
						panic("concurrent scoring diverged")
					}
				}
				m.Rank(xs)
				m.ArgBestBatch(xs)
			}
		}()
	}
	wg.Wait()
}
