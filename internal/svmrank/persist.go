package svmrank

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/feature"
)

// persisted is the on-disk form of a model; a version tag guards against
// loading models trained with an incompatible feature encoding.
type persisted struct {
	Version int
	Dim     int
	W       []float64
	C       float64
}

const persistVersion = 1

// Save writes the model to w in gob format.
func (m *Model) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(persisted{
		Version: persistVersion,
		Dim:     feature.Dim,
		W:       m.W,
		C:       m.C,
	})
}

// Load reads a model previously written by Save.
func Load(r io.Reader) (*Model, error) {
	var p persisted
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("svmrank: decoding model: %w", err)
	}
	if p.Version != persistVersion {
		return nil, fmt.Errorf("svmrank: model version %d, want %d", p.Version, persistVersion)
	}
	if p.Dim != feature.Dim {
		return nil, fmt.Errorf("svmrank: model feature dim %d, build has %d", p.Dim, feature.Dim)
	}
	return &Model{W: p.W, C: p.C}, nil
}

// SaveFile writes the model to a file path.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a model from a file path.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// persistedDataset is the on-disk form of a training dataset.
type persistedDataset struct {
	Version  int
	Dim      int
	Examples []Example
}

// SaveDataset writes a training dataset in gob format, so expensive
// measured training sets can be reused across runs.
func SaveDataset(w io.Writer, d *Dataset) error {
	return gob.NewEncoder(w).Encode(persistedDataset{
		Version:  persistVersion,
		Dim:      feature.Dim,
		Examples: d.Examples,
	})
}

// LoadDataset reads a dataset previously written by SaveDataset.
func LoadDataset(r io.Reader) (*Dataset, error) {
	var p persistedDataset
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("svmrank: decoding dataset: %w", err)
	}
	if p.Version != persistVersion {
		return nil, fmt.Errorf("svmrank: dataset version %d, want %d", p.Version, persistVersion)
	}
	if p.Dim != feature.Dim {
		return nil, fmt.Errorf("svmrank: dataset feature dim %d, build has %d", p.Dim, feature.Dim)
	}
	return &Dataset{Examples: p.Examples}, nil
}
