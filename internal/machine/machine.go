// Package machine describes the hardware the performance simulator models.
// The paper's evaluation platform is an Intel Xeon E5-2680 v3: 12 cores at
// 2.5 GHz, 32 KiB L1D and 256 KiB L2 per core, a 30 MiB shared L3, 32 GB of
// DDR4, and 256-bit AVX2 vector units.
//
// The description is pure data: all modeling logic lives in
// internal/perfmodel, so alternative machines (for portability experiments)
// can be described without touching the model.
package machine

import "fmt"

// Cache describes one level of the data-cache hierarchy.
type Cache struct {
	Name string
	// SizeBytes is the capacity visible to one core (shared caches report
	// the per-core share in EffectiveBytes).
	SizeBytes int
	// Shared reports whether the level is shared between all cores.
	Shared bool
	// BandwidthGBs is the sustainable read bandwidth from this level into
	// the core, in GB/s per core.
	BandwidthGBs float64
}

// Machine is a complete description of a target platform.
type Machine struct {
	Name       string
	Cores      int
	FreqGHz    float64
	VectorBits int     // SIMD register width
	Caches     []Cache // ordered from L1 outward
	// MemBandwidthGBs is the aggregate DRAM bandwidth across the socket.
	MemBandwidthGBs float64
	// ThreadSpawnOverheadNs approximates the cost of dispatching one unit
	// of work to a worker thread (OpenMP chunk dispatch / goroutine wakeup).
	ThreadSpawnOverheadNs float64
	// LoopOverheadCycles is the per-iteration control overhead of a
	// non-unrolled innermost loop.
	LoopOverheadCycles float64
}

// XeonE52680v3 returns the description of the paper's evaluation machine.
func XeonE52680v3() *Machine {
	return &Machine{
		Name:       "Intel Xeon E5-2680 v3",
		Cores:      12,
		FreqGHz:    2.5,
		VectorBits: 256,
		Caches: []Cache{
			{Name: "L1D", SizeBytes: 32 << 10, BandwidthGBs: 300},
			{Name: "L2", SizeBytes: 256 << 10, BandwidthGBs: 120},
			{Name: "L3", SizeBytes: 30 << 20, Shared: true, BandwidthGBs: 60},
		},
		MemBandwidthGBs:       55,
		ThreadSpawnOverheadNs: 400,
		LoopOverheadCycles:    2,
	}
}

// DesktopQuad returns a generic 4-core desktop description (higher clock,
// smaller shared cache, dual-channel memory). Used by the portability
// experiments: the paper motivates autotuning with the observation that
// optimal configurations do not port between architectures, and retraining
// the model on a new machine description recovers the lost performance.
func DesktopQuad() *Machine {
	return &Machine{
		Name:       "Generic quad-core desktop",
		Cores:      4,
		FreqGHz:    3.6,
		VectorBits: 256,
		Caches: []Cache{
			{Name: "L1D", SizeBytes: 32 << 10, BandwidthGBs: 350},
			{Name: "L2", SizeBytes: 512 << 10, BandwidthGBs: 150},
			{Name: "L3", SizeBytes: 8 << 20, Shared: true, BandwidthGBs: 80},
		},
		MemBandwidthGBs:       30,
		ThreadSpawnOverheadNs: 300,
		LoopOverheadCycles:    2,
	}
}

// SIMDLanes returns how many elements of the given byte width fit in one
// vector register (8 floats or 4 doubles for AVX2).
func (m *Machine) SIMDLanes(elemBytes int) int {
	if elemBytes <= 0 {
		return 1
	}
	lanes := m.VectorBits / 8 / elemBytes
	if lanes < 1 {
		return 1
	}
	return lanes
}

// EffectiveBytes returns the cache capacity available to one core at the
// given level (shared caches are divided among cores).
func (m *Machine) EffectiveBytes(level int) int {
	c := m.Caches[level]
	if c.Shared {
		return c.SizeBytes / m.Cores
	}
	return c.SizeBytes
}

// BandwidthForWorkingSet returns the per-core streaming bandwidth (GB/s) a
// working set of the given size experiences: the bandwidth of the innermost
// cache level it fits into, or the per-core share of DRAM bandwidth when it
// fits nowhere.
func (m *Machine) BandwidthForWorkingSet(bytes int) float64 {
	for level := range m.Caches {
		if bytes <= m.EffectiveBytes(level) {
			return m.Caches[level].BandwidthGBs
		}
	}
	return m.MemBandwidthGBs / float64(m.Cores)
}

// CycleNs returns the duration of one core cycle in nanoseconds.
func (m *Machine) CycleNs() float64 { return 1.0 / m.FreqGHz }

// Validate checks the description is self-consistent.
func (m *Machine) Validate() error {
	if m.Cores < 1 {
		return fmt.Errorf("machine %q: %d cores", m.Name, m.Cores)
	}
	if m.FreqGHz <= 0 {
		return fmt.Errorf("machine %q: frequency %v", m.Name, m.FreqGHz)
	}
	if m.VectorBits < 64 {
		return fmt.Errorf("machine %q: vector width %d", m.Name, m.VectorBits)
	}
	if len(m.Caches) == 0 {
		return fmt.Errorf("machine %q: no caches", m.Name)
	}
	prev := 0
	for i, c := range m.Caches {
		if c.SizeBytes <= prev {
			return fmt.Errorf("machine %q: cache %d (%s) not larger than inner level", m.Name, i, c.Name)
		}
		prev = c.SizeBytes
		if c.BandwidthGBs <= 0 {
			return fmt.Errorf("machine %q: cache %s bandwidth %v", m.Name, c.Name, c.BandwidthGBs)
		}
	}
	if m.MemBandwidthGBs <= 0 {
		return fmt.Errorf("machine %q: memory bandwidth %v", m.Name, m.MemBandwidthGBs)
	}
	return nil
}
