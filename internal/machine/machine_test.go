package machine

import "testing"

func TestXeonDescription(t *testing.T) {
	m := XeonE52680v3()
	if err := m.Validate(); err != nil {
		t.Fatalf("reference machine invalid: %v", err)
	}
	if m.Cores != 12 {
		t.Errorf("cores = %d, want 12", m.Cores)
	}
	if m.Caches[1].SizeBytes != 256<<10 {
		t.Errorf("L2 = %d, want 256 KiB (paper Sec. VI)", m.Caches[1].SizeBytes)
	}
	if m.FreqGHz != 2.5 {
		t.Errorf("freq = %v, want 2.5 GHz", m.FreqGHz)
	}
}

func TestSIMDLanes(t *testing.T) {
	m := XeonE52680v3()
	if got := m.SIMDLanes(4); got != 8 {
		t.Errorf("float lanes = %d, want 8 (AVX2)", got)
	}
	if got := m.SIMDLanes(8); got != 4 {
		t.Errorf("double lanes = %d, want 4 (AVX2)", got)
	}
	if got := m.SIMDLanes(0); got != 1 {
		t.Errorf("degenerate lanes = %d, want 1", got)
	}
	if got := m.SIMDLanes(64); got != 1 {
		t.Errorf("oversized element lanes = %d, want 1", got)
	}
}

func TestEffectiveBytesSharedDivision(t *testing.T) {
	m := XeonE52680v3()
	if got := m.EffectiveBytes(0); got != 32<<10 {
		t.Errorf("L1 effective = %d", got)
	}
	if got := m.EffectiveBytes(2); got != (30<<20)/12 {
		t.Errorf("L3 effective = %d, want per-core share", got)
	}
}

func TestBandwidthMonotoneInWorkingSet(t *testing.T) {
	m := XeonE52680v3()
	sizes := []int{1 << 10, 64 << 10, 1 << 20, 100 << 20}
	prev := m.BandwidthForWorkingSet(sizes[0])
	for _, s := range sizes[1:] {
		bw := m.BandwidthForWorkingSet(s)
		if bw > prev {
			t.Errorf("bandwidth increased with working set: %v -> %v at %d", prev, bw, s)
		}
		prev = bw
	}
	// Tiny working set gets L1 bandwidth; huge gets DRAM share.
	if got := m.BandwidthForWorkingSet(1 << 10); got != 300 {
		t.Errorf("L1 bandwidth = %v", got)
	}
	if got := m.BandwidthForWorkingSet(1 << 30); got != 55.0/12 {
		t.Errorf("DRAM bandwidth = %v", got)
	}
}

func TestCycleNs(t *testing.T) {
	m := XeonE52680v3()
	if got := m.CycleNs(); got != 0.4 {
		t.Errorf("CycleNs = %v, want 0.4", got)
	}
}

func TestValidateCatchesBadDescriptions(t *testing.T) {
	base := func() *Machine { return XeonE52680v3() }
	mutations := map[string]func(*Machine){
		"no-cores":      func(m *Machine) { m.Cores = 0 },
		"no-freq":       func(m *Machine) { m.FreqGHz = 0 },
		"narrow-vector": func(m *Machine) { m.VectorBits = 32 },
		"no-caches":     func(m *Machine) { m.Caches = nil },
		"shrinking-l2":  func(m *Machine) { m.Caches[1].SizeBytes = 1 },
		"zero-cache-bw": func(m *Machine) { m.Caches[0].BandwidthGBs = 0 },
		"zero-dram-bw":  func(m *Machine) { m.MemBandwidthGBs = 0 },
	}
	for name, mutate := range mutations {
		m := base()
		mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestDesktopQuadValid(t *testing.T) {
	m := DesktopQuad()
	if err := m.Validate(); err != nil {
		t.Fatalf("desktop machine invalid: %v", err)
	}
	if m.Cores != 4 {
		t.Errorf("cores = %d, want 4", m.Cores)
	}
	xeon := XeonE52680v3()
	if m.Cores >= xeon.Cores {
		t.Error("desktop should have fewer cores than the Xeon")
	}
	if m.FreqGHz <= xeon.FreqGHz {
		t.Error("desktop should clock higher than the Xeon")
	}
}
