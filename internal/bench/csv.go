package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/trainer"
)

// CSV emission for every experiment, so results can be re-plotted with
// external tooling.

// WriteTable2CSV writes Table II rows.
func WriteTable2CSV(w io.Writer, rows []trainer.Phases) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"ts_size", "ts_compile_s", "ts_generation_s", "training_s", "regression_s"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			strconv.Itoa(r.TSSize),
			fmt.Sprintf("%.3f", r.TSCompile.Seconds()),
			fmt.Sprintf("%.3f", r.TSGeneration.Seconds()),
			fmt.Sprintf("%.6f", r.Training.Seconds()),
			fmt.Sprintf("%.9f", r.Regression.Seconds()),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig4CSV writes the Fig. 4 speedup table.
func WriteFig4CSV(w io.Writer, rows []Fig4Row, trainSizes []int) error {
	cw := csv.NewWriter(w)
	header := []string{"benchmark", "base_runtime_s"}
	for _, e := range engineOrder {
		header = append(header, "speedup_"+shortEngine(e))
	}
	for _, s := range trainSizes {
		header = append(header, fmt.Sprintf("speedup_ordreg_%d", s))
	}
	header = append(header, "speedup_oracle_bound")
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{r.Benchmark, fmt.Sprintf("%.6f", r.BaseRuntime)}
		for _, e := range engineOrder {
			rec = append(rec, fmt.Sprintf("%.4f", r.Search[e]))
		}
		for _, s := range trainSizes {
			rec = append(rec, fmt.Sprintf("%.4f", r.Regression[s]))
		}
		rec = append(rec, fmt.Sprintf("%.4f", r.OracleBound))
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig5CSV writes the convergence curves (long format).
func WriteFig5CSV(w io.Writer, series []Fig5Series) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"benchmark", "method", "evaluations", "gflops"}); err != nil {
		return err
	}
	for _, s := range series {
		for _, e := range engineOrder {
			for _, p := range s.Curves[e] {
				rec := []string{s.Benchmark, shortEngine(e),
					strconv.Itoa(p.Evaluations), fmt.Sprintf("%.4f", p.GFlops)}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		}
		sizes := make([]int, 0, len(s.Regression))
		for sz := range s.Regression {
			sizes = append(sizes, sz)
		}
		sort.Ints(sizes)
		for _, sz := range sizes {
			rec := []string{s.Benchmark, fmt.Sprintf("ordreg_%d", sz), "0",
				fmt.Sprintf("%.4f", s.Regression[sz])}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig6CSV writes per-instance τ values.
func WriteFig6CSV(w io.Writer, res Fig6Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"ts_size", "instance_index", "query", "group_size", "tau"}); err != nil {
		return err
	}
	sizes := make([]int, 0, len(res.Taus))
	for s := range res.Taus {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	for _, size := range sizes {
		for i, qt := range res.Taus[size] {
			rec := []string{strconv.Itoa(size), strconv.Itoa(i), qt.Query,
				strconv.Itoa(qt.Size), fmt.Sprintf("%.4f", qt.Tau)}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig7CSV writes the distribution summaries.
func WriteFig7CSV(w io.Writer, rows []Fig7Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"ts_size", "n", "min", "q1", "median", "q3", "max", "mean", "iqr", "outliers"}); err != nil {
		return err
	}
	for _, r := range rows {
		s := r.Summary
		rec := []string{
			strconv.Itoa(r.Size), strconv.Itoa(s.N),
			fmt.Sprintf("%.4f", s.Min), fmt.Sprintf("%.4f", s.Q1),
			fmt.Sprintf("%.4f", s.Median), fmt.Sprintf("%.4f", s.Q3),
			fmt.Sprintf("%.4f", s.Max), fmt.Sprintf("%.4f", s.Mean),
			fmt.Sprintf("%.4f", s.IQR), strconv.Itoa(len(s.Outliers)),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
