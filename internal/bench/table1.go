package bench

import (
	"fmt"
	"strings"

	"repro/internal/ranking"
	"repro/internal/stencil"
	"repro/internal/tunespace"
)

// Table1Row is one line of the paper's didactic Table I: a stencil-instance
// execution with its runtime and within-instance rank.
type Table1Row struct {
	Index    int
	Instance string
	Tuning   tunespace.Vector
	Runtime  float64
	Rank     int
}

// Table1 reproduces the structure of Table I: two kernels × two input sizes,
// three tuning vectors each, ranked within every instance. The concrete
// kernels are laplacian and gradient at the paper's two 3-D sizes.
func (h *Harness) Table1() []Table1Row {
	instances := []stencil.Instance{
		{Kernel: stencil.Laplacian(), Size: stencil.Size3D(128, 128, 128)},
		{Kernel: stencil.Laplacian(), Size: stencil.Size3D(256, 256, 256)},
		{Kernel: stencil.Gradient(), Size: stencil.Size3D(128, 128, 128)},
		{Kernel: stencil.Gradient(), Size: stencil.Size3D(256, 256, 256)},
	}
	tunings := []tunespace.Vector{
		{Bx: 32, By: 16, Bz: 8, U: 2, C: 2},
		{Bx: 4, By: 4, Bz: 4, U: 0, C: 1},
		{Bx: 1024, By: 1024, Bz: 1024, U: 8, C: 16},
	}
	var rows []Table1Row
	idx := 1
	for _, q := range instances {
		runtimes := make([]float64, len(tunings))
		for i, tv := range tunings {
			runtimes[i] = h.Eval.Runtime(q, tv)
		}
		ranks := ranking.Ranks(runtimes)
		for i, tv := range tunings {
			rows = append(rows, Table1Row{
				Index:    idx,
				Instance: q.ID(),
				Tuning:   tv,
				Runtime:  runtimes[i],
				Rank:     ranks[i],
			})
			idx++
		}
	}
	return rows
}

// RenderTable1 formats the Table I reproduction.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("TABLE I — example stencil instance executions with partial rankings\n")
	fmt.Fprintf(&b, "%3s  %-24s %-28s %12s  %4s\n", "#", "Instance", "Tuning", "Runtime", "Rank")
	for _, r := range rows {
		fmt.Fprintf(&b, "%3d  %-24s %-28s %10.2fms  %4d\n",
			r.Index, r.Instance, r.Tuning.String(), r.Runtime*1000, r.Rank)
	}
	b.WriteString("(rankings are only comparable within the same instance — Sec. IV-D)\n")
	return b.String()
}
