// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation section (see the per-experiment index in
// DESIGN.md §3):
//
//	Table II — per-phase costs across twelve training-set sizes
//	Table III — the benchmark inventory
//	Fig. 4 — speedup vs the GA-1024 base configuration, all 17 benchmarks
//	Fig. 5 — GFlop/s vs evaluation count for four stencils + time-to-solution
//	Fig. 6 — per-instance Kendall τ at two training sizes
//	Fig. 7 — Kendall τ distribution across twelve training sizes
//
// Each experiment returns structured rows; rendering (ASCII tables/charts and
// CSV) lives in render.go. Used by cmd/stencil-bench and bench_test.go.
package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ranking"
	"repro/internal/search"
	"repro/internal/stencil"
	"repro/internal/svmrank"
	"repro/internal/trainer"
	"repro/internal/tunespace"
)

// Harness runs the experiments against one evaluator.
type Harness struct {
	Eval dataset.Evaluator
	// Validator re-measures final configurations for reporting (Fig. 4).
	// Search engines select on Eval, whose noise they can exploit
	// ("winner's curse"); the paper's speedups come from fresh
	// measurements of the chosen configurations, which Validator models by
	// using an independently-seeded noise stream. Defaults to Eval.
	Validator dataset.Evaluator
	// Seed drives every random component; same seed → same report.
	Seed int64
	// Budget is the per-engine evaluation budget (the paper uses 1024).
	Budget int
	// Workers bounds concurrent training-set generation (0/1 sequential,
	// negative = GOMAXPROCS). Reports are identical for every worker count:
	// dataset generation uses per-instance RNG streams.
	Workers int
	// Fig4Sizes are the ordinal-regression training sizes of Fig. 4.
	Fig4Sizes []int
	// models caches one trained model per training size.
	models map[int]*svmrank.Model
	// sets caches the generated training set per size (Fig. 6/7 reuse).
	sets map[int]*dataset.Set
}

// New returns a harness with the paper's experiment parameters.
func New(eval dataset.Evaluator, seed int64) *Harness {
	return &Harness{
		Eval:      eval,
		Validator: eval,
		Seed:      seed,
		Budget:    1024,
		Fig4Sizes: []int{960, 3840, 6720, 16000},
		models:    make(map[int]*svmrank.Model),
		sets:      make(map[int]*dataset.Set),
	}
}

// Close releases resources held by evaluators that own persistent worker
// pools or pooled grid workspaces (the Measure-mode executor returns its
// grids to the grid pool here). It is a no-op for simulator-backed
// harnesses, so callers may defer it unconditionally.
func (h *Harness) Close() {
	for _, e := range []dataset.Evaluator{h.Eval, h.Validator} {
		if c, ok := e.(interface{ Close() }); ok {
			c.Close()
		}
	}
}

// modelFor trains (or returns the cached) model for a training-set size.
func (h *Harness) modelFor(size int) (*svmrank.Model, *dataset.Set, error) {
	if m, ok := h.models[size]; ok {
		return m, h.sets[size], nil
	}
	cfg := trainer.DefaultConfig(size, h.Seed)
	cfg.Dataset.Workers = h.Workers
	res, err := trainer.Train(h.Eval, cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("bench: training size %d: %w", size, err)
	}
	h.models[size] = res.Model
	h.sets[size] = res.Set
	return res.Model, res.Set, nil
}

// ---------------------------------------------------------------------------
// Table II

// Table2 measures the per-phase costs for the given training-set sizes
// (trainer.Table2Sizes() for the full table).
func (h *Harness) Table2(sizes []int) ([]trainer.Phases, error) {
	return trainer.MeasurePhases(h.Eval, sizes, 0, h.Seed, h.Workers)
}

// ---------------------------------------------------------------------------
// Fig. 4

// Fig4Row is one benchmark's bar group in Fig. 4: the speedup of every
// method relative to the base configuration (generational GA, 1024 evals).
type Fig4Row struct {
	Benchmark   string
	BaseRuntime float64            // runtime of the GA-1024 base config
	Search      map[string]float64 // engine name → speedup
	Regression  map[int]float64    // training size → speedup
	OracleBound float64            // best of the predefined set → speedup bound
}

// Fig4 reproduces the speedup comparison over all 17 Table III benchmarks.
func (h *Harness) Fig4() ([]Fig4Row, error) {
	// Train all models first so failures surface early.
	for _, size := range h.Fig4Sizes {
		if _, _, err := h.modelFor(size); err != nil {
			return nil, err
		}
	}
	var rows []Fig4Row
	for _, q := range stencil.Benchmarks() {
		row, err := h.fig4Row(q)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", q.ID(), err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func (h *Harness) fig4Row(q stencil.Instance) (Fig4Row, error) {
	space := tunespace.NewSpace(q.Kernel.Dims())
	obj := core.ObjectiveFor(h.Eval, q)

	// Base configuration: generational GA after the full budget. All final
	// configurations are re-measured with the Validator (fresh noise) —
	// the search may have selected a lucky measurement.
	validator := h.Validator
	if validator == nil {
		validator = h.Eval
	}
	base := search.NewGenerationalGA().Search(space, obj, h.Budget, h.Seed)
	baseRuntime := validator.Runtime(q, base.Best)
	row := Fig4Row{
		Benchmark:   q.ID(),
		BaseRuntime: baseRuntime,
		Search:      map[string]float64{"genetic algorithm": 1.0},
		Regression:  map[int]float64{},
	}
	for _, e := range search.Engines() {
		if e.Name() == "genetic algorithm" {
			continue
		}
		r := e.Search(space, obj, h.Budget, h.Seed)
		row.Search[e.Name()] = baseRuntime / validator.Runtime(q, r.Best)
	}
	cands := space.Predefined()
	for _, size := range h.Fig4Sizes {
		model, _, err := h.modelFor(size)
		if err != nil {
			return row, err
		}
		tuner := core.New(model)
		best, err := tuner.Best(q, cands)
		if err != nil {
			return row, err
		}
		row.Regression[size] = baseRuntime / validator.Runtime(q, best)
	}
	_, oracle := core.OracleBest(validator, q, cands)
	row.OracleBound = baseRuntime / oracle
	return row, nil
}

// ---------------------------------------------------------------------------
// Fig. 5

// Fig5Point is one sample of a convergence curve.
type Fig5Point struct {
	Evaluations int
	GFlops      float64
}

// Fig5Series is the full panel for one stencil benchmark.
type Fig5Series struct {
	Benchmark string
	// Curves maps engine name → GFlop/s of the best-so-far configuration
	// at evaluation counts 2^0 … 2^10.
	Curves map[string][]Fig5Point
	// Regression maps training size → the GFlop/s of the model's
	// top-ranked configuration (the horizontal lines of Fig. 5).
	Regression map[int]float64
	// TimeToSolution maps method → seconds spent to produce its answer:
	// for search engines the simulated cost of running all evaluated
	// configurations; for the regression model the measured ranking time.
	TimeToSolution map[string]float64
}

// Fig5Benchmarks returns the four stencils shown in Fig. 5.
func Fig5Benchmarks() []stencil.Instance {
	return []stencil.Instance{
		{Kernel: stencil.Gradient(), Size: stencil.Size3D(256, 256, 256)},
		{Kernel: stencil.Tricubic(), Size: stencil.Size3D(256, 256, 256)},
		{Kernel: stencil.Blur(), Size: stencil.Size2D(1024, 768)},
		{Kernel: stencil.Divergence(), Size: stencil.Size3D(128, 128, 128)},
	}
}

// Fig5 reproduces the convergence panels for the given benchmarks (defaults
// to Fig5Benchmarks when nil).
func (h *Harness) Fig5(benchmarks []stencil.Instance) ([]Fig5Series, error) {
	if benchmarks == nil {
		benchmarks = Fig5Benchmarks()
	}
	var out []Fig5Series
	for _, q := range benchmarks {
		s, err := h.fig5Series(q)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", q.ID(), err)
		}
		out = append(out, s)
	}
	return out, nil
}

// gflopsOf converts a runtime into throughput for an instance.
func gflopsOf(q stencil.Instance, seconds float64) float64 {
	return float64(q.Size.Points()) * float64(q.Kernel.Flops()) / seconds / 1e9
}

func (h *Harness) fig5Series(q stencil.Instance) (Fig5Series, error) {
	space := tunespace.NewSpace(q.Kernel.Dims())
	obj := core.ObjectiveFor(h.Eval, q)
	s := Fig5Series{
		Benchmark:      q.ID(),
		Curves:         map[string][]Fig5Point{},
		Regression:     map[int]float64{},
		TimeToSolution: map[string]float64{},
	}
	for _, e := range search.Engines() {
		r := e.Search(space, obj, h.Budget, h.Seed)
		var curve []Fig5Point
		for n := 1; n <= h.Budget; n *= 2 {
			curve = append(curve, Fig5Point{Evaluations: n, GFlops: gflopsOf(q, r.BestAfter(n))})
		}
		s.Curves[e.Name()] = curve
		// Simulated time-to-solution: the summed runtime of every evaluated
		// configuration — what iterative compilation actually costs on the
		// testbed (History only keeps best-so-far, so re-run with an
		// accumulating objective).
		s.TimeToSolution[e.Name()] = h.searchCost(q, e)
	}
	cands := space.Predefined()
	for _, size := range h.Fig4Sizes {
		model, _, err := h.modelFor(size)
		if err != nil {
			return s, err
		}
		tuner := core.New(model)
		start := time.Now()
		best, err := tuner.Best(q, cands)
		if err != nil {
			return s, err
		}
		rankTime := time.Since(start).Seconds()
		s.Regression[size] = gflopsOf(q, h.Eval.Runtime(q, best))
		key := fmt.Sprintf("ord.regression size=%d", size)
		s.TimeToSolution[key] = rankTime
	}
	return s, nil
}

// searchCost re-runs the engine charging the simulated execution cost of
// every distinct evaluated configuration.
func (h *Harness) searchCost(q stencil.Instance, e search.Engine) float64 {
	space := tunespace.NewSpace(q.Kernel.Dims())
	var total float64
	obj := func(v tunespace.Vector) float64 {
		r := h.Eval.Runtime(q, v)
		total += r
		return r
	}
	e.Search(space, obj, h.Budget, h.Seed)
	return total
}

// ---------------------------------------------------------------------------
// Fig. 6 / Fig. 7

// Fig6Result holds the per-instance τ sequences for the compared sizes.
type Fig6Result struct {
	// Taus maps training size → τ per training instance, in instance order.
	Taus map[int][]trainer.QueryTau
}

// Fig6Sizes returns the two training-set sizes compared in Fig. 6.
func Fig6Sizes() []int { return []int{960, 6720} }

// Fig6 computes the Kendall τ of every training instance for the two sizes.
func (h *Harness) Fig6(sizes []int) (Fig6Result, error) {
	if sizes == nil {
		sizes = Fig6Sizes()
	}
	out := Fig6Result{Taus: map[int][]trainer.QueryTau{}}
	for _, size := range sizes {
		model, set, err := h.modelFor(size)
		if err != nil {
			return out, err
		}
		out.Taus[size] = trainer.EvaluateTau(model, set)
	}
	return out, nil
}

// Fig7Row is one box+violin of Fig. 7.
type Fig7Row struct {
	Size    int
	Summary ranking.Summary
	// Density is a Gaussian KDE of the τ sample evaluated on DensityGrid.
	Density []float64
}

// DensityGrid returns the τ-axis evaluation points used for the violins.
func DensityGrid() []float64 {
	const n = 41
	grid := make([]float64, n)
	for i := range grid {
		grid[i] = -1 + 2*float64(i)/float64(n-1)
	}
	return grid
}

// Fig7 computes the τ distribution per training-set size (defaults to the
// twelve Table II sizes).
func (h *Harness) Fig7(sizes []int) ([]Fig7Row, error) {
	if sizes == nil {
		sizes = trainer.Table2Sizes()
	}
	grid := DensityGrid()
	var rows []Fig7Row
	for _, size := range sizes {
		model, set, err := h.modelFor(size)
		if err != nil {
			return nil, err
		}
		taus := trainer.TauValues(trainer.EvaluateTau(model, set))
		rows = append(rows, Fig7Row{
			Size:    size,
			Summary: ranking.Summarize(taus),
			Density: ranking.KDE(taus, grid),
		})
	}
	return rows, nil
}
