package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/stencil"
	"repro/internal/trainer"
)

// This file renders experiment results as ASCII tables and charts, matching
// the rows/series the paper reports.

// engineOrder is the Fig. 4 legend order.
var engineOrder = []string{
	"genetic algorithm", "differential evolution", "evolutive strategy", "sGA",
}

// RenderTable2 formats Table II.
func RenderTable2(rows []trainer.Phases) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE II — computing time of the training phases\n")
	fmt.Fprintf(&b, "%8s  %12s  %14s  %10s  %12s\n",
		"TS Size", "TS Comp.", "TS Generation", "Training", "Regression")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d  %12s  %14s  %10s  %12s\n",
			r.TSSize,
			roundDur(r.TSCompile), roundDur(r.TSGeneration),
			roundDur(r.Training), roundDur(r.Regression))
	}
	return b.String()
}

func roundDur(d time.Duration) string {
	switch {
	case d >= time.Hour:
		return fmt.Sprintf("%.1fh", d.Hours())
	case d >= time.Minute:
		return fmt.Sprintf("%.1fm", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// RenderTable3 formats the benchmark inventory of Table III.
func RenderTable3() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE III — stencil test benchmarks (9 kernels, 17 benchmarks)\n")
	fmt.Fprintf(&b, "%-14s %-4s %-10s %-8s %-8s %s\n",
		"Kernel", "Dims", "Points", "Buffers", "Type", "Sizes")
	sizes := map[string][]string{}
	for _, q := range stencil.Benchmarks() {
		sizes[q.Kernel.Name] = append(sizes[q.Kernel.Name], q.Size.String())
	}
	for _, k := range stencil.BenchmarkKernels() {
		fmt.Fprintf(&b, "%-14s %-4d %-10d %-8d %-8s %s\n",
			k.Name, k.Dims(), k.Shape.Size(), k.Buffers, k.Type,
			strings.Join(sizes[k.Name], ", "))
	}
	return b.String()
}

// RenderFig4 formats the speedup comparison as a table plus bar chart.
func RenderFig4(rows []Fig4Row, trainSizes []int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIG. 4 — speedup vs base configuration (GA after 1024 evaluations)\n")
	// Header.
	fmt.Fprintf(&b, "%-26s", "benchmark")
	for _, e := range engineOrder {
		fmt.Fprintf(&b, " %8s", shortEngine(e))
	}
	for _, s := range trainSizes {
		fmt.Fprintf(&b, " %8s", fmt.Sprintf("or.%d", s))
	}
	fmt.Fprintf(&b, " %8s\n", "bound")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-26s", r.Benchmark)
		for _, e := range engineOrder {
			fmt.Fprintf(&b, " %8.3f", r.Search[e])
		}
		for _, s := range trainSizes {
			fmt.Fprintf(&b, " %8.3f", r.Regression[s])
		}
		fmt.Fprintf(&b, " %8.3f\n", r.OracleBound)
	}
	// Bar chart of the largest-model regression speedup per benchmark.
	if len(trainSizes) > 0 {
		big := trainSizes[len(trainSizes)-1]
		fmt.Fprintf(&b, "\nord.regression size=%d speedup (|=1.0):\n", big)
		for _, r := range rows {
			fmt.Fprintf(&b, "%-26s %s %.2f\n", r.Benchmark, bar(r.Regression[big], 1.4, 40), r.Regression[big])
		}
	}
	return b.String()
}

func shortEngine(name string) string {
	switch name {
	case "genetic algorithm":
		return "GA"
	case "differential evolution":
		return "DE"
	case "evolutive strategy":
		return "ES"
	case "sGA":
		return "sGA"
	default:
		return name
	}
}

// bar renders v on a scale where full is width characters; a '|' marks 1.0.
func bar(v, full float64, width int) string {
	n := int(v / full * float64(width))
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	mark := int(1.0 / full * float64(width))
	var sb strings.Builder
	for i := 0; i < width; i++ {
		switch {
		case i == mark:
			sb.WriteByte('|')
		case i < n:
			sb.WriteByte('#')
		default:
			sb.WriteByte(' ')
		}
	}
	return sb.String()
}

// RenderFig5 formats the convergence panels.
func RenderFig5(series []Fig5Series, trainSizes []int) string {
	var b strings.Builder
	for _, s := range series {
		fmt.Fprintf(&b, "FIG. 5 — %s: GFlop/s of best configuration vs evaluations\n", s.Benchmark)
		fmt.Fprintf(&b, "%8s", "evals")
		for _, e := range engineOrder {
			fmt.Fprintf(&b, " %8s", shortEngine(e))
		}
		fmt.Fprintf(&b, "\n")
		if len(s.Curves[engineOrder[0]]) > 0 {
			for i, p := range s.Curves[engineOrder[0]] {
				fmt.Fprintf(&b, "%8d", p.Evaluations)
				for _, e := range engineOrder {
					fmt.Fprintf(&b, " %8.2f", s.Curves[e][i].GFlops)
				}
				fmt.Fprintf(&b, "\n")
			}
		}
		fmt.Fprintf(&b, "ordinal regression (horizontal lines):\n")
		for _, size := range trainSizes {
			fmt.Fprintf(&b, "  size=%-6d %8.2f GFlop/s\n", size, s.Regression[size])
		}
		fmt.Fprintf(&b, "time-to-solution (seconds, log-scale bars in the paper):\n")
		keys := make([]string, 0, len(s.TimeToSolution))
		for k := range s.TimeToSolution {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "  %-28s %12.4g s\n", k, s.TimeToSolution[k])
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// RenderFig6 formats the per-instance τ sequences.
func RenderFig6(res Fig6Result) string {
	var b strings.Builder
	sizes := make([]int, 0, len(res.Taus))
	for s := range res.Taus {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	for _, size := range sizes {
		taus := res.Taus[size]
		fmt.Fprintf(&b, "FIG. 6 — Kendall τ per training instance, size=%d (n=%d)\n", size, len(taus))
		// Sparkline-style histogram over instance index, 50 per row.
		for i, qt := range taus {
			if i%50 == 0 {
				if i > 0 {
					fmt.Fprintf(&b, "\n")
				}
				fmt.Fprintf(&b, "%4d: ", i)
			}
			b.WriteByte(tauGlyph(qt.Tau))
		}
		fmt.Fprintf(&b, "\n  (glyphs: '#'≥0.8  '+'≥0.5  '.'≥0.2  '~'≥-0.2  '-'<-0.2)\n\n")
	}
	return b.String()
}

func tauGlyph(tau float64) byte {
	switch {
	case tau >= 0.8:
		return '#'
	case tau >= 0.5:
		return '+'
	case tau >= 0.2:
		return '.'
	case tau >= -0.2:
		return '~'
	default:
		return '-'
	}
}

// RenderFig7 formats the τ distribution per training size as text box plots
// with violin densities.
func RenderFig7(rows []Fig7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIG. 7 — Kendall τ distribution by training-set size (C as configured)\n")
	fmt.Fprintf(&b, "%8s  %7s %7s %7s %7s %7s %9s  %s\n",
		"size", "min", "Q1", "median", "Q3", "max", "outliers", "violin (τ from -1 to 1)")
	grid := DensityGrid()
	for _, r := range rows {
		s := r.Summary
		fmt.Fprintf(&b, "%8d  %7.3f %7.3f %7.3f %7.3f %7.3f %9d  %s\n",
			r.Size, s.Min, s.Q1, s.Median, s.Q3, s.Max, len(s.Outliers),
			violin(r.Density, grid))
	}
	return b.String()
}

// violin renders a density as a sparkline over the τ grid.
func violin(density, grid []float64) string {
	if len(density) == 0 {
		return ""
	}
	max := 0.0
	for _, d := range density {
		if d > max {
			max = d
		}
	}
	if max == 0 {
		return strings.Repeat(" ", len(density))
	}
	glyphs := []byte(" .:-=+*#%@")
	var sb strings.Builder
	for _, d := range density {
		idx := int(d / max * float64(len(glyphs)-1))
		sb.WriteByte(glyphs[idx])
	}
	return sb.String()
}
