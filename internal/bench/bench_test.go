package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/perfmodel"
	"repro/internal/stencil"
)

// smallHarness keeps experiment runtime manageable in unit tests.
func smallHarness() *Harness {
	h := New(perfmodel.New(machine.XeonE52680v3()), 1)
	h.Budget = 64
	h.Fig4Sizes = []int{480, 960}
	return h
}

func TestTable2(t *testing.T) {
	h := smallHarness()
	rows, err := h.Table2([]int{480, 960})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	out := RenderTable2(rows)
	if !strings.Contains(out, "TABLE II") || !strings.Contains(out, "960") {
		t.Errorf("render missing content:\n%s", out)
	}
	var buf bytes.Buffer
	if err := WriteTable2CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 3 {
		t.Errorf("CSV lines = %d, want 3", lines)
	}
}

func TestRenderTable3(t *testing.T) {
	out := RenderTable3()
	for _, want := range []string{"TABLE III", "blur", "laplacian6", "divergence", "double"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table III render missing %q", want)
		}
	}
	// 17 benchmarks grouped into 9 kernel rows.
	if lines := strings.Count(out, "\n"); lines != 11 { // header×2 + 9 kernels
		t.Errorf("Table III rows = %d, want 11", lines)
	}
}

func TestFig4SmallRun(t *testing.T) {
	h := smallHarness()
	rows, err := h.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 17 {
		t.Fatalf("rows = %d, want 17", len(rows))
	}
	for _, r := range rows {
		if r.BaseRuntime <= 0 {
			t.Errorf("%s: base runtime %v", r.Benchmark, r.BaseRuntime)
		}
		if r.Search["genetic algorithm"] != 1.0 {
			t.Errorf("%s: GA speedup must be 1.0 (it is the base)", r.Benchmark)
		}
		for _, e := range engineOrder {
			if v, ok := r.Search[e]; !ok || v <= 0 {
				t.Errorf("%s: engine %s speedup %v", r.Benchmark, e, v)
			}
		}
		for _, s := range h.Fig4Sizes {
			v, ok := r.Regression[s]
			if !ok || v <= 0 {
				t.Errorf("%s: regression size %d speedup %v", r.Benchmark, s, v)
			}
			// Standalone tuning is bounded by the predefined-set oracle.
			if v > r.OracleBound+1e-9 {
				t.Errorf("%s: regression speedup %.3f exceeds oracle bound %.3f",
					r.Benchmark, v, r.OracleBound)
			}
		}
	}
	out := RenderFig4(rows, h.Fig4Sizes)
	if !strings.Contains(out, "FIG. 4") || !strings.Contains(out, "blur/1024x1024") {
		t.Error("Fig. 4 render incomplete")
	}
	var buf bytes.Buffer
	if err := WriteFig4CSV(&buf, rows, h.Fig4Sizes); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 18 {
		t.Errorf("CSV lines = %d, want 18", lines)
	}
}

func TestFig5SmallRun(t *testing.T) {
	h := smallHarness()
	qs := []stencil.Instance{
		{Kernel: stencil.Gradient(), Size: stencil.Size3D(128, 128, 128)},
	}
	series, err := h.Fig5(qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 {
		t.Fatalf("series = %d", len(series))
	}
	s := series[0]
	for _, e := range engineOrder {
		curve := s.Curves[e]
		if len(curve) == 0 {
			t.Fatalf("engine %s has no curve", e)
		}
		// Monotone non-decreasing GFlop/s (best-so-far improves).
		for i := 1; i < len(curve); i++ {
			if curve[i].GFlops < curve[i-1].GFlops-1e-9 {
				t.Errorf("%s: GFlops decreased at %d evals", e, curve[i].Evaluations)
			}
		}
		if s.TimeToSolution[e] <= 0 {
			t.Errorf("%s: time-to-solution %v", e, s.TimeToSolution[e])
		}
	}
	for _, size := range h.Fig4Sizes {
		if s.Regression[size] <= 0 {
			t.Errorf("regression size %d GFlops %v", size, s.Regression[size])
		}
	}
	// Regression ranking must be far cheaper than iterative search.
	for _, e := range engineOrder {
		for _, size := range h.Fig4Sizes {
			key := "ord.regression size=" + itoa(size)
			if s.TimeToSolution[key] >= s.TimeToSolution[e] {
				t.Errorf("regression (%v s) not cheaper than %s (%v s)",
					s.TimeToSolution[key], e, s.TimeToSolution[e])
			}
		}
	}
	out := RenderFig5(series, h.Fig4Sizes)
	if !strings.Contains(out, "FIG. 5") || !strings.Contains(out, "time-to-solution") {
		t.Error("Fig. 5 render incomplete")
	}
	var buf bytes.Buffer
	if err := WriteFig5CSV(&buf, series); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty Fig. 5 CSV")
	}
}

func itoa(v int) string { return strconv.Itoa(v) }

func TestFig6SmallRun(t *testing.T) {
	h := smallHarness()
	res, err := h.Fig6([]int{480, 960})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Taus) != 2 {
		t.Fatalf("sizes = %d", len(res.Taus))
	}
	for size, taus := range res.Taus {
		if len(taus) == 0 {
			t.Errorf("size %d: no taus", size)
		}
	}
	out := RenderFig6(res)
	if !strings.Contains(out, "FIG. 6") {
		t.Error("Fig. 6 render incomplete")
	}
	var buf bytes.Buffer
	if err := WriteFig6CSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty Fig. 6 CSV")
	}
}

func TestFig7SmallRun(t *testing.T) {
	h := smallHarness()
	rows, err := h.Fig7([]int{480, 960, 1920})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Summary.N == 0 {
			t.Errorf("size %d: empty summary", r.Size)
		}
		if len(r.Density) != len(DensityGrid()) {
			t.Errorf("size %d: density grid mismatch", r.Size)
		}
		if r.Summary.Median < -1 || r.Summary.Median > 1 {
			t.Errorf("size %d: median τ %v", r.Size, r.Summary.Median)
		}
	}
	out := RenderFig7(rows)
	if !strings.Contains(out, "FIG. 7") || !strings.Contains(out, "median") {
		t.Error("Fig. 7 render incomplete")
	}
	var buf bytes.Buffer
	if err := WriteFig7CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 4 {
		t.Errorf("CSV lines = %d, want 4", lines)
	}
}

func TestModelCacheReused(t *testing.T) {
	h := smallHarness()
	m1, _, err := h.modelFor(480)
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := h.modelFor(480)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("model not cached")
	}
}

func TestFig5BenchmarksMatchPaper(t *testing.T) {
	qs := Fig5Benchmarks()
	if len(qs) != 4 {
		t.Fatalf("got %d benchmarks, want 4", len(qs))
	}
	want := []string{"gradient/256x256x256", "tricubic/256x256x256", "blur/1024x768", "divergence/128x128x128"}
	for i, q := range qs {
		if q.ID() != want[i] {
			t.Errorf("panel %d = %s, want %s", i, q.ID(), want[i])
		}
	}
}

func TestBarRendering(t *testing.T) {
	b := bar(0.7, 1.4, 40)
	if len(b) != 40 {
		t.Fatalf("bar width %d", len(b))
	}
	if !strings.Contains(b, "|") {
		t.Error("bar missing 1.0 marker")
	}
	if bar(-1, 1.4, 10) == bar(2.0, 1.4, 10) {
		t.Error("clamped bars should differ between extremes")
	}
}

func TestTable1(t *testing.T) {
	h := smallHarness()
	rows := h.Table1()
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12 (4 instances × 3 tunings, as Table I)", len(rows))
	}
	// Ranks within each instance are a permutation of 1..3.
	byInstance := map[string][]int{}
	for _, r := range rows {
		byInstance[r.Instance] = append(byInstance[r.Instance], r.Rank)
		if r.Runtime <= 0 {
			t.Errorf("row %d: runtime %v", r.Index, r.Runtime)
		}
	}
	if len(byInstance) != 4 {
		t.Fatalf("instances = %d", len(byInstance))
	}
	for id, ranks := range byInstance {
		seen := map[int]bool{}
		for _, rk := range ranks {
			if rk < 1 || rk > 3 || seen[rk] {
				t.Errorf("%s: bad rank set %v", id, ranks)
				break
			}
			seen[rk] = true
		}
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "TABLE I") || !strings.Contains(out, "laplacian/128x128x128") {
		t.Error("Table I render incomplete")
	}
}
