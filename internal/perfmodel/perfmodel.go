// Package perfmodel is the deterministic performance simulator that stands in
// for the paper's PATUS-generated binaries running on the Xeon E5-2680 v3
// (see DESIGN.md §1 for the substitution rationale).
//
// The model is an analytic roofline-style cost model over the blocked,
// unrolled, chunk-scheduled loop nest that PATUS emits. For one execution
// (kernel k, size s, tuning t = (bx,by,bz,u,c)) it combines:
//
//  1. Memory traffic. Every sweep must move the compulsory grid bytes; the
//     blocking decides how often neighbouring planes are *re*-read: if the
//     (2·off+1)-plane reuse window of a tile fits in L2 the inputs stream
//     once, if only the row window fits each z-offset re-reads its plane,
//     and degenerate tiles additionally pay inter-tile halo traffic
//     (footprint / interior ratio). Grids small enough to live in the
//     shared L3 see cache instead of DRAM bandwidth, and DRAM bandwidth is
//     derated for the stencil access pattern.
//  2. Compute throughput: flops and vector loads per point over the SIMD
//     lanes, derated by a fixed code-generation efficiency.
//  3. Unrolling: longer dependency-free bodies hide instruction latency,
//     but unrolled bodies whose live values exceed the register file spill.
//  4. Loop overhead: per-iteration control cost shrinks with unrolling;
//     tiny tiles pay per-row and per-tile startup costs.
//  5. TLB: tiles whose concurrent row streams span too many pages stall.
//  6. Threading: tiles are dispatched in chunks of c consecutive tiles;
//     few chunks leave cores idle (imbalance), many chunks pay dispatch.
//
// A deterministic hash-seeded noise term (±few %) makes the induced partial
// orders realistic (near-ties can swap) while keeping every experiment
// reproducible — run-to-run variance on real hardware plays the same role in
// the paper.
package perfmodel

import (
	"hash/fnv"
	"math"

	"repro/internal/machine"
	"repro/internal/stencil"
	"repro/internal/tunespace"
)

// Calibration constants. These derate theoretical peaks to the fraction
// realistic stencil code achieves; they set absolute magnitudes only and do
// not affect which tuning wins.
const (
	// computeEff is the fraction of peak vector issue realistic generated
	// stencil code sustains (address arithmetic, unaligned loads, …).
	computeEff = 0.30
	// dramEff derates the STREAM bandwidth for stencil access patterns.
	dramEff = 0.40
	// writeAllocFactor accounts for read-for-ownership on stores.
	writeAllocFactor = 2.0
)

// Model evaluates executions on a described machine.
//
// A Model is read-only once configured: Runtime, GFlops and Evaluate are
// pure functions of (M, NoiseAmp, Seed) and the arguments, touching no
// mutable state. One model may therefore serve any number of goroutines
// concurrently — batch evaluators and parallel dataset generation rely on
// this. (Reconfiguring the fields mid-flight is the caller's race.)
type Model struct {
	M *machine.Machine
	// NoiseAmp is the relative amplitude of the deterministic noise term
	// (default 0.03). Zero disables noise entirely.
	NoiseAmp float64
	// Seed perturbs the noise hash, giving independent "re-measurements".
	Seed uint64
}

// New returns a model of the given machine with the default ±3% noise.
func New(m *machine.Machine) *Model {
	return &Model{M: m, NoiseAmp: 0.03}
}

// Breakdown exposes the intermediate quantities of one evaluation, for tests,
// docs and the model-inspection tooling.
type Breakdown struct {
	TilePoints      float64 // interior points per full tile
	ReuseFactor     float64 // how often each input byte is re-read
	HaloRatio       float64 // inter-tile footprint / interior ratio
	TrafficPerPoint float64 // bytes per updated point
	BandwidthGBs    float64 // per-core bandwidth the traffic is served at
	MemNsPerPoint   float64
	CompNsPerPoint  float64
	OverheadNs      float64 // loop/row/tile control overhead per point
	SIMDEfficiency  float64
	UnrollFactor    float64 // compute-time multiplier from unrolling
	TLBPenalty      float64
	Tiles           int
	Groups          int // dispatch units: ceil(tiles / c)
	Parallelism     float64
	DispatchNs      float64 // total dispatch cost
	Seconds         float64 // final runtime
	GFlops          float64
}

// Runtime returns the simulated wall-clock seconds of executing the stencil
// instance with the given tuning vector, sweeping the full grid once.
func (m *Model) Runtime(q stencil.Instance, t tunespace.Vector) float64 {
	return m.Evaluate(q, t).Seconds
}

// GFlops returns the simulated throughput of the execution.
func (m *Model) GFlops(q stencil.Instance, t tunespace.Vector) float64 {
	return m.Evaluate(q, t).GFlops
}

// Evaluate computes the full cost breakdown for one execution.
func (m *Model) Evaluate(q stencil.Instance, t tunespace.Vector) Breakdown {
	k := q.Kernel
	sz := q.Size
	mach := m.M

	off := k.Shape.MaxOffset()
	offZ := off
	if sz.Is2D() {
		offZ = 0
	}
	bytes := float64(k.Type.Bytes())

	// Effective tile extents: blocks never exceed the grid.
	ebx := min(t.Bx, sz.X)
	eby := min(t.By, sz.Y)
	ebz := 1
	if !sz.Is2D() {
		ebz = min(max(t.Bz, 1), sz.Z)
	}

	var b Breakdown
	b.TilePoints = float64(ebx) * float64(eby) * float64(ebz)

	// --- 1. Memory traffic -------------------------------------------------
	// Reuse analysis against the per-core L2: the plane window keeps all
	// (2·offZ+1) z-planes of the tile cross-section live; the row window
	// keeps the (2·off+1) y-rows.
	l2 := float64(mach.EffectiveBytes(1))
	planeWindow := float64(ebx+2*off) * float64(eby+2*off) * float64(2*offZ+1) *
		bytes * float64(k.Buffers)
	rowWindow := float64(ebx+2*off) * float64(2*off+1) * bytes * float64(k.Buffers)
	switch {
	case planeWindow <= l2:
		b.ReuseFactor = 1
	case rowWindow <= l2:
		b.ReuseFactor = float64(2*offZ + 1)
	default:
		// No cache reuse at all: every access misses.
		b.ReuseFactor = float64(k.Shape.TotalAccesses()) / float64(k.Buffers)
	}

	// Inter-tile halo traffic: tiles re-read their halo shells.
	foot := float64(ebx+2*off) * float64(eby+2*off) * float64(ebz+2*offZ)
	b.HaloRatio = foot / b.TilePoints

	inputPerPoint := bytes * float64(k.Buffers) * b.ReuseFactor * b.HaloRatio
	writePerPoint := writeAllocFactor * bytes
	b.TrafficPerPoint = inputPerPoint + writePerPoint

	// Bandwidth: grids resident in the shared L3 see cache bandwidth;
	// otherwise the per-core share of derated DRAM bandwidth.
	gridBytes := float64(sz.Points()) * bytes * float64(k.Buffers+1)
	b.BandwidthGBs = mach.MemBandwidthGBs * dramEff / float64(mach.Cores)
	cacheResident := false
	cacheBW := b.BandwidthGBs
	for _, c := range mach.Caches {
		if c.Shared {
			if cacheBW < c.BandwidthGBs {
				cacheBW = c.BandwidthGBs
			}
			if gridBytes <= float64(c.SizeBytes) {
				cacheResident = true
				b.BandwidthGBs = c.BandwidthGBs
			}
		}
	}
	b.MemNsPerPoint = b.TrafficPerPoint / b.BandwidthGBs

	// --- 2/3. Compute with SIMD and unrolling ------------------------------
	lanes := mach.SIMDLanes(k.Type.Bytes())
	vecIters := math.Ceil(float64(ebx) / float64(lanes))
	b.SIMDEfficiency = float64(ebx) / (vecIters * float64(lanes))

	u := t.U
	// Latency hiding: a serial non-unrolled body exposes dependency stalls;
	// unrolling toward independent accumulators approaches full issue.
	exposed := 1.6 / (1.0 + float64(u))
	// Register pressure: live values grow with the unroll depth and the
	// shape density; AVX2 offers 16 architectural vector registers.
	live := float64(u+1) * math.Sqrt(float64(k.Shape.TotalAccesses()))
	spill := 1.0
	const registers = 16
	if live > registers {
		spill = 1 + 0.35*math.Log2(live/registers)
	}
	b.UnrollFactor = (1 + exposed) * spill

	// Two vector FMA pipes -> 4·lanes flops/cycle; one vector load per
	// cycle -> lanes loads/cycle. Both derated by computeEff.
	flopCycles := float64(k.Flops()) / (4 * float64(lanes) * b.SIMDEfficiency)
	loadCycles := float64(k.Shape.TotalAccesses()) / float64(lanes)
	issueCycles := math.Max(flopCycles, loadCycles) / computeEff
	b.CompNsPerPoint = issueCycles * mach.CycleNs() * b.UnrollFactor

	// --- 4. Loop / row / tile control overhead -----------------------------
	iterOvh := mach.LoopOverheadCycles * mach.CycleNs() / float64(max(1, u)) / float64(lanes)
	rowOvh := 8 * mach.CycleNs() / float64(ebx)   // per-row setup amortized over the row
	tileOvh := 60 * mach.CycleNs() / b.TilePoints // per-tile setup amortized over the tile
	b.OverheadNs = iterOvh + rowOvh + tileOvh

	// --- 5. TLB pressure ----------------------------------------------------
	streams := float64(eby) * float64(ebz) * float64(k.Buffers)
	b.TLBPenalty = 1.0
	const tlbEntries = 1024
	if streams > tlbEntries {
		b.TLBPenalty = 1 + 0.25*math.Log2(streams/tlbEntries)
	}

	// --- Temporal fusion ----------------------------------------------------
	// A fusion depth above 1 executes K timesteps per sweep through the
	// wavefront engine (exec.FusedProgram). Modeled per-step effects, all
	// gated on EffFuse() > 1 so unfused evaluations are bit-identical to the
	// pre-fusion model:
	//   - DRAM-bound grids amortize the compulsory traffic over K steps;
	//     intermediate levels stream through the shared cache instead.
	//     Cache-resident grids keep their bandwidth (fusion cannot help).
	//   - Redundant recomputation: the K-1 intermediate levels each extend
	//     the sweep by wrapped extension planes near the periodic seam.
	//   - Wavefront synchronization: one worker rendezvous per stream plane
	//     instead of one per sweep.
	var fusedSyncNs float64
	if kf := t.EffFuse(); kf > 1 && k.Buffers == 1 {
		streamExtent := sz.Z
		if sz.Is2D() {
			streamExtent = sz.Y
		}
		if !cacheResident {
			b.MemNsPerPoint = b.MemNsPerPoint/float64(kf) +
				(1-1/float64(kf))*b.TrafficPerPoint/cacheBW
		}
		redundancy := 1 + float64((kf-1)*off)/float64(max(1, streamExtent))
		b.CompNsPerPoint *= redundancy
		iterations := float64(streamExtent + (kf-1)*(2*off+1))
		fusedSyncNs = iterations * mach.ThreadSpawnOverheadNs / float64(kf)
	}

	// Roofline combination: overlap memory and compute, pay overheads on top.
	perPoint := math.Max(b.MemNsPerPoint*b.TLBPenalty, b.CompNsPerPoint) + b.OverheadNs

	// --- 6. Threading: chunked tile dispatch --------------------------------
	tilesX := ceilDiv(sz.X, max(1, t.Bx))
	tilesY := ceilDiv(sz.Y, max(1, t.By))
	tilesZ := 1
	if !sz.Is2D() {
		tilesZ = ceilDiv(sz.Z, max(1, t.Bz))
	}
	b.Tiles = tilesX * tilesY * tilesZ
	b.Groups = ceilDiv(b.Tiles, max(1, t.C))

	cores := float64(mach.Cores)
	// Rounds of group execution: the last round may be partially filled.
	rounds := math.Ceil(float64(b.Groups) / cores)
	b.Parallelism = float64(b.Groups) / rounds
	if b.Parallelism > cores {
		b.Parallelism = cores
	}

	totalWorkNs := float64(sz.Points()) * perPoint
	execNs := totalWorkNs / b.Parallelism
	b.DispatchNs = float64(b.Groups)*mach.ThreadSpawnOverheadNs/cores + fusedSyncNs
	totalNs := execNs + b.DispatchNs

	// Deterministic noise.
	if m.NoiseAmp > 0 {
		totalNs *= 1 + m.NoiseAmp*(2*m.hash01(q, t)-1)
	}

	b.Seconds = totalNs * 1e-9
	b.GFlops = float64(sz.Points()) * float64(k.Flops()) / totalNs
	return b
}

// hash01 maps an execution to a deterministic pseudo-random value in [0, 1).
func (m *Model) hash01(q stencil.Instance, t tunespace.Vector) float64 {
	h := fnv.New64a()
	var buf [8]byte
	writeU64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	writeU64(m.Seed)
	h.Write([]byte(q.Kernel.Name))
	writeU64(uint64(q.Size.X))
	writeU64(uint64(q.Size.Y))
	writeU64(uint64(q.Size.Z))
	writeU64(uint64(t.Bx))
	writeU64(uint64(t.By))
	writeU64(uint64(t.Bz))
	writeU64(uint64(t.U))
	writeU64(uint64(t.C))
	// Fusion depth joins the hash only when it changes execution (EffFuse > 1),
	// so every pre-fusion simulated measurement is reproduced bit-identically.
	if kf := t.EffFuse(); kf > 1 {
		writeU64(uint64(kf))
	}
	return float64(h.Sum64()>>11) / float64(1<<53)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
