package perfmodel

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/machine"
	"repro/internal/stencil"
	"repro/internal/tunespace"
)

func model() *Model { return New(machine.XeonE52680v3()) }

func lap256() stencil.Instance {
	return stencil.Instance{Kernel: stencil.Laplacian(), Size: stencil.Size3D(256, 256, 256)}
}

func blurQ() stencil.Instance {
	return stencil.Instance{Kernel: stencil.Blur(), Size: stencil.Size2D(1024, 768)}
}

func TestRuntimePositiveAndFinite(t *testing.T) {
	m := model()
	rng := rand.New(rand.NewSource(1))
	for _, q := range stencil.Benchmarks() {
		space := tunespace.NewSpace(q.Kernel.Dims())
		for i := 0; i < 300; i++ {
			tv := space.Random(rng)
			r := m.Runtime(q, tv)
			if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
				t.Fatalf("%s %v: runtime %v", q.ID(), tv, r)
			}
		}
	}
}

func TestDeterministic(t *testing.T) {
	m1, m2 := model(), model()
	q := lap256()
	tv := tunespace.Vector{Bx: 64, By: 32, Bz: 8, U: 4, C: 2}
	if m1.Runtime(q, tv) != m2.Runtime(q, tv) {
		t.Fatal("model not deterministic across instances")
	}
	if m1.Runtime(q, tv) != m1.Runtime(q, tv) {
		t.Fatal("model not deterministic across calls")
	}
}

func TestSeedChangesNoiseOnly(t *testing.T) {
	a := model()
	b := model()
	b.Seed = 99
	q := lap256()
	tv := tunespace.Vector{Bx: 64, By: 32, Bz: 8, U: 4, C: 2}
	ra, rb := a.Runtime(q, tv), b.Runtime(q, tv)
	if ra == rb {
		t.Error("different seeds produced identical runtimes (noise inactive?)")
	}
	if math.Abs(ra-rb)/ra > 0.07 {
		t.Errorf("seed changed runtime by %.1f%%, noise should be ±3%%", 100*math.Abs(ra-rb)/ra)
	}
}

func TestNoiseAmpZeroDisablesNoise(t *testing.T) {
	a := model()
	a.NoiseAmp = 0
	b := model()
	b.NoiseAmp = 0
	b.Seed = 1234
	q := blurQ()
	tv := tunespace.Vector{Bx: 128, By: 16, Bz: 1, U: 2, C: 2}
	if a.Runtime(q, tv) != b.Runtime(q, tv) {
		t.Error("NoiseAmp=0 should make seeds irrelevant")
	}
}

func TestTinyTilesSlowerThanModerate(t *testing.T) {
	// Degenerate 2×2×2 tiles pay massive halo traffic and per-tile overhead.
	m := model()
	m.NoiseAmp = 0
	q := lap256()
	tiny := m.Runtime(q, tunespace.Vector{Bx: 2, By: 2, Bz: 2, U: 0, C: 1})
	moderate := m.Runtime(q, tunespace.Vector{Bx: 256, By: 16, Bz: 4, U: 4, C: 2})
	if tiny < 2*moderate {
		t.Errorf("tiny tiles (%.4fs) should be much slower than moderate (%.4fs)", tiny, moderate)
	}
}

func TestCacheFitMatters(t *testing.T) {
	// A tile streaming the whole 256³ double grid cannot beat an L2-sized tile.
	m := model()
	m.NoiseAmp = 0
	q := lap256()
	huge := m.Runtime(q, tunespace.Vector{Bx: 1024, By: 1024, Bz: 1024, U: 4, C: 1})
	fit := m.Runtime(q, tunespace.Vector{Bx: 256, By: 8, Bz: 4, U: 4, C: 1})
	if fit >= huge {
		t.Errorf("cache-fitting tile (%.4fs) not faster than whole-grid tile (%.4fs)", fit, huge)
	}
}

func TestUnrollHelpsComputeBoundKernel(t *testing.T) {
	// Tricubic with an L1-resident tile is compute bound; moderate unroll must
	// beat none.
	m := model()
	m.NoiseAmp = 0
	q := stencil.Instance{Kernel: stencil.Tricubic(), Size: stencil.Size3D(128, 128, 128)}
	none := m.Runtime(q, tunespace.Vector{Bx: 64, By: 4, Bz: 2, U: 0, C: 2})
	some := m.Runtime(q, tunespace.Vector{Bx: 64, By: 4, Bz: 2, U: 2, C: 2})
	if some >= none {
		t.Errorf("u=2 (%.4fs) should beat u=0 (%.4fs) on compute-bound kernel", some, none)
	}
}

func TestExtremeUnrollSpills(t *testing.T) {
	// On a dense 64-point kernel, u=8 holds too many live values.
	m := model()
	m.NoiseAmp = 0
	q := stencil.Instance{Kernel: stencil.Tricubic(), Size: stencil.Size3D(128, 128, 128)}
	b2 := m.Evaluate(q, tunespace.Vector{Bx: 64, By: 4, Bz: 2, U: 2, C: 2})
	b8 := m.Evaluate(q, tunespace.Vector{Bx: 64, By: 4, Bz: 2, U: 8, C: 2})
	if b8.UnrollFactor <= b2.UnrollFactor {
		t.Errorf("u=8 unroll factor %.3f should exceed u=2 %.3f (register spill)",
			b8.UnrollFactor, b2.UnrollFactor)
	}
}

func TestChunkTradeoff(t *testing.T) {
	// With very many tiny dispatch groups, overhead dominates; with one giant
	// chunk, parallelism collapses. A moderate chunk beats both extremes on a
	// workload with plenty of tiles.
	m := model()
	m.NoiseAmp = 0
	q := lap256()
	tv := tunespace.Vector{Bx: 32, By: 4, Bz: 2, U: 2, C: 1}
	b := m.Evaluate(q, tv)
	if b.Groups != b.Tiles {
		t.Fatalf("c=1 should give one group per tile")
	}
	// Fewer groups with bigger chunks.
	b8 := m.Evaluate(q, tunespace.Vector{Bx: 32, By: 4, Bz: 2, U: 2, C: 8})
	if b8.Groups >= b.Groups {
		t.Errorf("c=8 groups %d should be < c=1 groups %d", b8.Groups, b.Groups)
	}
	if b8.DispatchNs >= b.DispatchNs {
		t.Errorf("bigger chunks should reduce dispatch cost")
	}
}

func TestParallelismBounded(t *testing.T) {
	m := model()
	rng := rand.New(rand.NewSource(2))
	q := lap256()
	space := tunespace.NewSpace(3)
	for i := 0; i < 500; i++ {
		b := m.Evaluate(q, space.Random(rng))
		if b.Parallelism <= 0 || b.Parallelism > float64(m.M.Cores) {
			t.Fatalf("parallelism %v outside (0, %d]", b.Parallelism, m.M.Cores)
		}
	}
}

func TestFewGroupsLimitParallelism(t *testing.T) {
	m := model()
	m.NoiseAmp = 0
	q := lap256()
	// One huge tile -> one group -> sequential execution.
	b := m.Evaluate(q, tunespace.Vector{Bx: 1024, By: 1024, Bz: 1024, U: 0, C: 16})
	if b.Groups != 1 {
		t.Fatalf("expected 1 group, got %d", b.Groups)
	}
	if b.Parallelism != 1 {
		t.Errorf("single group must serialize: parallelism = %v", b.Parallelism)
	}
}

func TestSIMDEfficiency(t *testing.T) {
	m := model()
	q := lap256() // double: 4 lanes
	full := m.Evaluate(q, tunespace.Vector{Bx: 64, By: 8, Bz: 4, U: 2, C: 2})
	if full.SIMDEfficiency != 1 {
		t.Errorf("bx=64 double should fill vectors: eff = %v", full.SIMDEfficiency)
	}
	// bx=2 with 4 lanes wastes half a vector.
	partial := m.Evaluate(q, tunespace.Vector{Bx: 2, By: 8, Bz: 4, U: 2, C: 2})
	if partial.SIMDEfficiency != 0.5 {
		t.Errorf("bx=2 double SIMD efficiency = %v, want 0.5", partial.SIMDEfficiency)
	}
}

func TestFloatKernelFasterThanDoubleEquivalent(t *testing.T) {
	// Same shape and size, float vs double: float streams half the bytes and
	// packs twice the lanes, so it must be faster under equal tuning.
	m := model()
	m.NoiseAmp = 0
	kf := &stencil.Kernel{Name: "lap-f", Shape: stencil.Laplacian().Shape, Buffers: 1, Type: stencil.Float32}
	kd := &stencil.Kernel{Name: "lap-d", Shape: stencil.Laplacian().Shape, Buffers: 1, Type: stencil.Float64}
	sz := stencil.Size3D(256, 256, 256)
	tv := tunespace.Vector{Bx: 128, By: 8, Bz: 4, U: 2, C: 2}
	rf := m.Runtime(stencil.Instance{Kernel: kf, Size: sz}, tv)
	rd := m.Runtime(stencil.Instance{Kernel: kd, Size: sz}, tv)
	if rf >= rd {
		t.Errorf("float %.5fs should beat double %.5fs", rf, rd)
	}
}

func TestGFlopsPlausibleRange(t *testing.T) {
	// Fig. 5 reports single-digit to tens of GFlop/s on this machine. Check
	// our best-tuned kernels fall in a plausible 0.1..500 range.
	m := model()
	rng := rand.New(rand.NewSource(3))
	for _, q := range stencil.Benchmarks() {
		space := tunespace.NewSpace(q.Kernel.Dims())
		best := 0.0
		for i := 0; i < 300; i++ {
			g := m.GFlops(q, space.Random(rng))
			if g > best {
				best = g
			}
		}
		if best < 0.1 || best > 500 {
			t.Errorf("%s: best GFlops %.2f implausible", q.ID(), best)
		}
	}
}

func TestTuningMattersEnough(t *testing.T) {
	// The search space must be worth tuning: best/worst runtime ratio over a
	// random sample should exceed 2x for every benchmark.
	m := model()
	rng := rand.New(rand.NewSource(4))
	for _, q := range stencil.Benchmarks() {
		space := tunespace.NewSpace(q.Kernel.Dims())
		lo, hi := math.Inf(1), 0.0
		for i := 0; i < 400; i++ {
			r := m.Runtime(q, space.Random(rng))
			lo = math.Min(lo, r)
			hi = math.Max(hi, r)
		}
		if hi/lo < 2 {
			t.Errorf("%s: runtime spread %.2fx too flat for a tuning study", q.ID(), hi/lo)
		}
	}
}

func TestBreakdownConsistency(t *testing.T) {
	m := model()
	m.NoiseAmp = 0
	q := lap256()
	b := m.Evaluate(q, tunespace.Vector{Bx: 64, By: 16, Bz: 4, U: 2, C: 2})
	if b.Tiles != 4*16*64 {
		t.Errorf("tiles = %d, want %d", b.Tiles, 4*16*64)
	}
	if b.Groups != (b.Tiles+1)/2 {
		t.Errorf("groups = %d, want ceil(tiles/2)", b.Groups)
	}
	wantGF := float64(q.Size.Points()) * float64(q.Kernel.Flops()) / (b.Seconds * 1e9)
	if math.Abs(b.GFlops-wantGF)/wantGF > 1e-9 {
		t.Errorf("GFlops %.4f inconsistent with seconds (%.4f)", b.GFlops, wantGF)
	}
}

func TestHash01Range(t *testing.T) {
	m := model()
	rng := rand.New(rand.NewSource(5))
	q := blurQ()
	space := tunespace.NewSpace(2)
	for i := 0; i < 1000; i++ {
		h := m.hash01(q, space.Random(rng))
		if h < 0 || h >= 1 {
			t.Fatalf("hash01 = %v outside [0,1)", h)
		}
	}
}

func TestRuntimeScalesWithProblemSize(t *testing.T) {
	m := model()
	m.NoiseAmp = 0
	tv := tunespace.Vector{Bx: 64, By: 8, Bz: 4, U: 2, C: 2}
	small := m.Runtime(stencil.Instance{Kernel: stencil.Laplacian(), Size: stencil.Size3D(128, 128, 128)}, tv)
	large := m.Runtime(lap256(), tv)
	ratio := large / small
	if ratio < 4 || ratio > 16 {
		t.Errorf("256³/128³ runtime ratio = %.2f, want roughly 8x", ratio)
	}
}

// TestModelConcurrentEvaluation asserts the documented read-only contract:
// one Model serves many goroutines and every goroutine sees the exact
// sequential values (run under -race in CI).
func TestModelConcurrentEvaluation(t *testing.T) {
	m := New(machine.XeonE52680v3())
	q := stencil.Instance{Kernel: stencil.Laplacian(), Size: stencil.Size3D(128, 128, 128)}
	vectors := make([]tunespace.Vector, 64)
	want := make([]float64, len(vectors))
	for i := range vectors {
		vectors[i] = tunespace.Vector{Bx: 2 << (i % 9), By: 4 << (i % 5), Bz: 2 << (i % 6), U: i % 9, C: 1 + i%16}
		want[i] = m.Runtime(q, vectors[i])
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				for i, tv := range vectors {
					if got := m.Runtime(q, tv); got != want[i] {
						select {
						case errs <- fmt.Errorf("vector %d: concurrent %v != sequential %v", i, got, want[i]):
						default:
						}
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

// TestFusionDepthOneIsIdentity pins that K = 0 and K = 1 reproduce the
// pre-fusion model bit-identically (runtime and noise).
func TestFusionDepthOneIsIdentity(t *testing.T) {
	m := model()
	q := stencil.Instance{Kernel: stencil.Laplacian(), Size: stencil.Size3D(192, 192, 192)}
	base := tunespace.Vector{Bx: 32, By: 16, Bz: 8, U: 4, C: 2}
	k0, k1 := base, base
	k0.K = 0
	k1.K = 1
	r := m.Runtime(q, base)
	if m.Runtime(q, k0) != r || m.Runtime(q, k1) != r {
		t.Fatal("K=0/K=1 must evaluate bit-identically to the pre-fusion model")
	}
}

// TestFusionHelpsDRAMBoundSweep pins the tentpole behaviour: on a grid far
// beyond the shared cache, fusing a bandwidth-bound stencil reduces the
// simulated per-step runtime; on a cache-resident grid it does not help.
func TestFusionHelpsDRAMBoundSweep(t *testing.T) {
	m := model()
	m.NoiseAmp = 0
	big := stencil.Instance{Kernel: stencil.Laplacian(), Size: stencil.Size3D(384, 384, 384)}
	tv := tunespace.Vector{Bx: 32, By: 16, Bz: 8, U: 2, C: 2}
	fused := tv
	fused.K = 4
	if rf, r1 := m.Runtime(big, fused), m.Runtime(big, tv); rf >= r1 {
		t.Errorf("fusion on DRAM-bound sweep: fused %g >= unfused %g", rf, r1)
	}
	small := stencil.Instance{Kernel: stencil.Laplacian(), Size: stencil.Size3D(48, 48, 48)}
	if rf, r1 := m.Runtime(small, fused), m.Runtime(small, tv); rf < r1 {
		t.Errorf("fusion on cache-resident sweep should not win: fused %g < unfused %g", rf, r1)
	}
}

// TestFusionDepthPerturbsNoise pins that distinct fused depths get
// independent noise draws (they are distinct executions).
func TestFusionDepthPerturbsNoise(t *testing.T) {
	m := model()
	q := stencil.Instance{Kernel: stencil.Laplacian(), Size: stencil.Size3D(256, 256, 256)}
	tv2 := tunespace.Vector{Bx: 32, By: 16, Bz: 8, U: 2, C: 2, K: 2}
	tv3 := tv2
	tv3.K = 3
	if m.hash01(q, tv2) == m.hash01(q, tv3) {
		t.Error("different fusion depths share a noise draw")
	}
}
